"""Tests for the batched (COO) model-construction path.

The COO API must be an exact twin of the expression API: same index
space, same assembled matrix, same solutions and duals.  These tests pin
the block bookkeeping, the validation errors, and the differential
equivalence on small LPs.
"""

import numpy as np
import pytest

from repro.lp import (EQ, GE, LE, Model, add_sum_topk, add_sum_topk_coo)
from repro.lp.errors import ModelError


# -- variable blocks -----------------------------------------------------

def test_variable_block_indices_and_interleaving():
    m = Model()
    a = m.add_variable("a")
    block = m.add_variables_array(3, "b", lb=1.0, ub=5.0)
    c = m.add_variable("c")
    assert a.index == 0
    assert list(block.indices) == [1, 2, 3]
    assert block.start == 1 and block.stop == 4 and len(block) == 3
    assert c.index == 4
    assert m.num_variables == 5


def test_variable_block_materialises_variables():
    m = Model()
    block = m.add_variables_array(2, "x", lb=np.array([0.0, 1.0]),
                                  ub=np.array([2.0, np.inf]))
    first, second = block[0], block[1]
    assert (first.lb, first.ub) == (0.0, 2.0)
    assert (second.lb, second.ub) == (1.0, None)  # inf means unbounded
    assert [v.index for v in block] == [0, 1]
    with pytest.raises(IndexError):
        block[2]


def test_variable_block_bound_validation():
    m = Model()
    with pytest.raises(ModelError):
        m.add_variables_array(2, "x", lb=3.0, ub=1.0)
    with pytest.raises(ModelError):
        m.add_variables_array(2, "x", lb=np.zeros(3))
    with pytest.raises(ModelError):
        m.add_variables_array(-1, "x")


def test_block_variables_work_with_expression_api():
    m = Model(sense="max")
    block = m.add_variables_array(2, "x", lb=0.0, ub=4.0)
    m.add_constraint(block[0] + block[1] <= 6.0)
    m.set_objective(block[0] + 2.0 * block[1])
    sol = m.solve()
    assert sol.objective == pytest.approx(10.0)
    assert sol.value_array(block) == pytest.approx([2.0, 4.0])


# -- COO constraints -----------------------------------------------------

def test_constraint_block_indices_interleave_with_expression_rows():
    m = Model()
    x = m.add_variables_array(3, "x")
    m.add_constraint(x[0] + x[1] <= 1.0)
    block = m.add_constraints_coo([0, 0, 1], [0, 1, 2], [1.0, 1.0, 1.0],
                                  LE, [1.0, 2.0])
    after = m.add_constraint(x[2] >= 0.5)
    assert block.start == 1 and block.count == 2
    assert list(block.indices) == [1, 2]
    assert block.index_of(1) == 2
    assert after.index == 3
    assert m.num_constraints == 4
    with pytest.raises(IndexError):
        block.index_of(2)


def test_constraints_coo_validation():
    m = Model()
    m.add_variables_array(2, "x")
    with pytest.raises(ModelError):  # shape mismatch
        m.add_constraints_coo([0], [0, 1], [1.0], LE, [1.0])
    with pytest.raises(ModelError):  # row out of range
        m.add_constraints_coo([1], [0], [1.0], LE, [1.0])
    with pytest.raises(ModelError):  # unknown variable
        m.add_constraints_coo([0], [5], [1.0], LE, [1.0])
    with pytest.raises(ModelError):  # unknown sense (shared)
        m.add_constraints_coo([0], [0], [1.0], "<", [1.0])
    with pytest.raises(ModelError):  # unknown sense (per-row)
        m.add_constraints_coo([0], [0], [1.0], ["<"], [1.0])
    with pytest.raises(ModelError):  # sense count mismatch
        m.add_constraints_coo([0], [0], [1.0], [LE, GE], [1.0])


def test_duplicate_coo_entries_are_summed():
    m = Model(sense="max")
    x = m.add_variables_array(1, "x", ub=10.0)
    # 0.5*x + 0.5*x <= 4  ==  x <= 4
    m.add_constraints_coo([0, 0], [0, 0], [0.5, 0.5], LE, [4.0])
    m.set_objective_coo([0, 0], [1.0, 1.0])  # 2*x
    sol = m.solve()
    assert sol.x[0] == pytest.approx(4.0)
    assert sol.objective == pytest.approx(8.0)


def test_objective_coo_validation_and_reset():
    m = Model()
    x = m.add_variable("x", ub=1.0)
    with pytest.raises(ModelError):
        m.set_objective_coo([3], [1.0])
    m.set_objective(2.0 * x)
    m.set_objective_coo([0], [1.0])
    assert m.objective is None  # COO replaces the expression objective
    m.set_objective(2.0 * x)
    assert m._objective_coo is None  # and vice versa


# -- differential equivalence -------------------------------------------

def build_expr(sense):
    m = Model(sense=sense)
    x = [m.add_variable(f"x{i}", lb=0.0, ub=4.0) for i in range(3)]
    m.add_constraint(x[0] + x[1] + x[2] <= 6.0, name="cap")
    m.add_constraint(x[0] + x[1] >= 1.0, name="floor")
    m.add_constraint(x[1] - x[2] == 0.0, name="tie")
    m.set_objective(3.0 * x[0] + 2.0 * x[1] + 1.0 * x[2])
    return m


def build_coo(sense):
    m = Model(sense=sense)
    block = m.add_variables_array(3, "x", lb=0.0, ub=4.0)
    m.add_constraints_coo(
        [0, 0, 0, 1, 1, 2, 2], [0, 1, 2, 0, 1, 1, 2],
        [1.0, 1.0, 1.0, 1.0, 1.0, 1.0, -1.0],
        [LE, GE, EQ], [6.0, 1.0, 0.0], name="rows")
    m.set_objective_coo(block.indices, [3.0, 2.0, 1.0])
    return m


@pytest.mark.parametrize("sense", ["max", "min"])
def test_coo_model_matches_expression_model(sense):
    se = build_expr(sense).solve()
    sc = build_coo(sense).solve()
    assert sc.objective == pytest.approx(se.objective)
    assert sc.x == pytest.approx(se.x)
    for row in range(3):
        assert sc.dual(row) == pytest.approx(se.dual(row), abs=1e-9)


def test_dual_array_matches_scalar_duals():
    m = Model(sense="max")
    block_vars = m.add_variables_array(2, "x", ub=3.0)
    rows = m.add_constraints_coo([0, 1], [0, 1], [1.0, 1.0],
                                 LE, [2.0, 1.0])
    m.set_objective_coo(block_vars.indices, [1.0, 5.0])
    sol = m.solve()
    duals = sol.dual_array(rows)
    assert duals == pytest.approx([sol.dual(rows.index_of(0)),
                                   sol.dual(rows.index_of(1))])
    assert duals == pytest.approx([1.0, 5.0])


# -- objective constants (solver dedup regression) ----------------------

@pytest.mark.parametrize("sense,expected", [("max", 9.0), ("min", 6.0)])
def test_objective_constant_both_senses_expression(sense, expected):
    m = Model(sense=sense)
    x = m.add_variable("x", lb=1.0, ub=2.0)
    m.set_objective(3.0 * x + 3.0)
    assert m.solve().objective == pytest.approx(expected)


@pytest.mark.parametrize("sense,expected", [("max", 9.0), ("min", 6.0)])
def test_objective_constant_both_senses_coo(sense, expected):
    m = Model(sense=sense)
    m.add_variables_array(1, "x", lb=1.0, ub=2.0)
    m.set_objective_coo([0], [3.0], constant=3.0)
    assert m.solve().objective == pytest.approx(expected)


# -- top-k twins ---------------------------------------------------------

@pytest.mark.parametrize("encoding", ["cvar", "sorting"])
@pytest.mark.parametrize("k", [1, 2, 4])
def test_topk_coo_matches_expression_encoding(encoding, k):
    rng = np.random.default_rng(42)
    values = rng.uniform(0.0, 10.0, size=4)

    me = Model(sense="min")
    fixed = [me.add_variable(f"v{i}", lb=v, ub=v)
             for i, v in enumerate(values)]
    se = add_sum_topk(me, fixed, k, name="z", encoding=encoding)
    me.set_objective(1.0 * se)
    ref = me.solve()

    mc = Model(sense="min")
    block = mc.add_variables_array(4, "v", lb=values, ub=values)
    s_index = add_sum_topk_coo(mc, block.indices, k, name="z",
                               encoding=encoding)
    mc.set_objective_coo([s_index], [1.0])
    fast = mc.solve()

    expected = np.sort(values)[::-1][:k].sum()
    assert ref.objective == pytest.approx(expected)
    assert fast.objective == pytest.approx(ref.objective)
    assert mc.num_variables == me.num_variables
    assert mc.num_constraints == me.num_constraints
