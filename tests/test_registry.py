"""Tests for the unified scheme/scenario registry (repro.registry).

One registry type, two instances: ``SCHEMES`` and ``SCENARIOS`` expose
the same register/get/names surface, raise *typed* errors that are also
the stdlib exception callers historically caught (``KeyError`` for
schemes, ``ValueError`` for scenarios), and the old access paths
(``SCHEME_FACTORIES`` / ``SCENARIO_BUILDERS``) keep working behind a
:class:`DeprecationWarning`.
"""

import pytest

from repro.registry import (Registry, RegistryError, SCENARIOS, SCHEMES,
                            UnknownScenarioError, UnknownSchemeError)


# -- the shared registry type -------------------------------------------------

def test_register_get_and_names_roundtrip():
    reg = Registry("widget", UnknownSchemeError)
    reg.register("Alpha", 1)
    reg.register("Beta", 2)
    assert reg.get("Alpha") == 1
    assert reg.names() == ["Alpha", "Beta"]
    assert list(reg) == ["Alpha", "Beta"]
    assert len(reg) == 2
    assert "Alpha" in reg and "Gamma" not in reg


def test_get_is_case_insensitive_with_exact_priority():
    reg = Registry("widget", UnknownSchemeError)
    reg.register("Pretium", "canonical")
    assert reg.get("pretium") == "canonical"
    assert reg.get("PRETIUM") == "canonical"
    # An exact name always wins over a case-folded match.
    reg.register("pretium", "lower")
    assert reg.get("pretium") == "lower"
    assert reg.get("Pretium") == "canonical"


def test_duplicate_registration_needs_replace():
    reg = Registry("widget", UnknownSchemeError)
    reg.register("a", 1)
    with pytest.raises(RegistryError, match="already registered"):
        reg.register("a", 2)
    reg.register("a", 2, replace=True)
    assert reg.get("a") == 2


def test_unknown_name_raises_typed_error_listing_names():
    reg = Registry("widget", UnknownSchemeError)
    reg.register("a", 1)
    with pytest.raises(UnknownSchemeError, match="unknown widget 'zz'"):
        reg.get("zz")
    with pytest.raises(UnknownSchemeError, match="'a'"):
        reg.get("zz")


def test_typed_errors_are_also_the_stdlib_exceptions():
    # Call sites that predate the registry catch KeyError (schemes) or
    # ValueError (scenarios); the typed errors must remain catchable
    # there, and str() must stay a readable message (KeyError reprs its
    # argument by default).
    assert issubclass(UnknownSchemeError, KeyError)
    assert issubclass(UnknownScenarioError, ValueError)
    assert issubclass(UnknownSchemeError, RegistryError)
    assert issubclass(UnknownScenarioError, RegistryError)
    message = "unknown scheme 'x'; expected one of ['a']"
    assert str(UnknownSchemeError(message)) == message


# -- the populated instances --------------------------------------------------

def test_schemes_registry_covers_the_evaluation_suite():
    names = SCHEMES.names()
    for expected in ("OPT", "NoPrices", "Pretium", "VCGLike"):
        assert expected in names
    spec = SCHEMES.get("pretium")  # case-insensitive CLI spelling
    assert spec.name == "Pretium"
    with pytest.raises(KeyError):
        SCHEMES.get("NopeScheme")


def test_scenarios_registry_covers_the_standard_worlds():
    names = SCENARIOS.names()
    for expected in ("standard", "tiny", "quick", "multiclass_medium",
                     "production"):
        assert expected in names
    builder = SCENARIOS.get("tiny")
    scenario = builder(seed=0)
    assert scenario.workload.n_requests > 0
    with pytest.raises(ValueError):
        SCENARIOS.get("nope_scenario")


def test_api_reexports_the_registry_surface():
    from repro import api
    assert api.SCHEMES is SCHEMES
    assert api.SCENARIOS is SCENARIOS
    assert api.UnknownSchemeError is UnknownSchemeError
    assert api.UnknownScenarioError is UnknownScenarioError


# -- deprecated aliases -------------------------------------------------------

def test_scheme_factories_alias_warns_but_works():
    from repro.experiments import runner
    with pytest.warns(DeprecationWarning, match="repro.registry.SCHEMES"):
        factories = runner.SCHEME_FACTORIES
    assert factories["Pretium"] is SCHEMES.get("Pretium")


def test_scenario_builders_alias_warns_but_works():
    from repro.experiments import scenarios
    with pytest.warns(DeprecationWarning,
                      match="repro.registry.SCENARIOS"):
        builders = scenarios.SCENARIO_BUILDERS
    assert builders["tiny"] is SCENARIOS.get("tiny")


def test_package_level_aliases_forward_with_warning():
    import repro.experiments as experiments
    with pytest.warns(DeprecationWarning):
        assert experiments.SCHEME_FACTORIES["Pretium"] is \
            SCHEMES.get("Pretium")
    with pytest.warns(DeprecationWarning):
        assert experiments.SCENARIO_BUILDERS["tiny"] is \
            SCENARIOS.get("tiny")
