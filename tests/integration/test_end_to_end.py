"""End-to-end integration tests across the whole stack."""

import numpy as np
import pytest

from repro.baselines import OfflineOptimal, RegionOracle
from repro.core import PretiumController, PretiumConfig
from repro.experiments import quick_scenario, run_schemes, standard_scenario
from repro.sim import metrics, simulate


def test_quick_scenario_full_stack():
    """All major schemes on one small scenario; the accounting holds."""
    scenario = quick_scenario(load_factor=2.0, seed=0)
    results = run_schemes(("OPT", "NoPrices", "RegionOracle", "Pretium"),
                          scenario)
    opt_welfare = metrics.welfare(results["OPT"], scenario.cost_model)
    assert opt_welfare > 0
    for name, result in results.items():
        welfare = metrics.welfare(result, scenario.cost_model)
        assert welfare <= opt_welfare + 1e-6, name
        # loads fit capacity for every scheme
        caps = np.array([l.capacity for l in scenario.topology.links])
        assert np.all(result.loads <= caps[None, :] * (1 + 1e-6) + 1e-6)


def test_pretium_beats_noprices_on_welfare():
    scenario = quick_scenario(load_factor=2.0, seed=1)
    results = run_schemes(("NoPrices", "Pretium"), scenario)
    pretium = metrics.welfare(results["Pretium"], scenario.cost_model)
    noprices = metrics.welfare(results["NoPrices"], scenario.cost_model)
    assert pretium > noprices


def test_determinism_of_full_runs():
    scenario = quick_scenario(load_factor=2.0, seed=5)
    first = simulate(PretiumController(), scenario.workload)
    second = simulate(PretiumController(), scenario.workload)
    assert first.delivered == pytest.approx(second.delivered)
    assert first.payments == pytest.approx(second.payments)
    assert np.allclose(first.loads, second.loads)


def test_highpri_headroom_respected_end_to_end():
    scenario = quick_scenario(load_factor=4.0, seed=2)
    config = PretiumConfig(window=8, lookback=8, highpri_fraction=0.3)
    controller = PretiumController(config)
    result = simulate(controller, scenario.workload)
    caps = np.array([l.capacity for l in scenario.topology.links])
    assert np.all(result.loads <= caps[None, :] * 0.7 * (1 + 1e-6) + 1e-6)


def test_rate_requests_served_via_byte_expansion():
    from repro.core import RateRequest
    from repro.network import parallel_paths_network
    from repro.traffic import Workload

    topo = parallel_paths_network(10.0, 10.0)
    rate = RateRequest(0, "S", "T", rate=5.0, arrival=0, start=1, end=3,
                       value=2.0)
    workload = Workload(topo, rate.to_byte_requests(id_offset=0),
                        n_steps=5, steps_per_day=5)
    result = simulate(PretiumController(
        PretiumConfig(window=5, lookback=5, initial_price=0.05)), workload)
    # every per-step sub-request delivered exactly its rate at its step
    for sub in workload.requests:
        assert result.delivered[sub.rid] == pytest.approx(5.0)
        assert result.delivered_by(sub.rid, sub.deadline) == \
            pytest.approx(5.0)


@pytest.mark.slow
def test_production_scale_smoke():
    """The paper-scale preset (106 nodes / ~226 edges) runs end to end."""
    from repro.experiments import production_scenario
    scenario = production_scenario(load_factor=1.0)
    assert scenario.topology.num_nodes == 106
    result = simulate(PretiumController(), scenario.workload)
    welfare = metrics.welfare(result, scenario.cost_model)
    assert welfare > 0
    assert metrics.completion_fraction(result, "chosen") > 0.8
