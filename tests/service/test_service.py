"""The asyncio service layer: batching, backpressure, budgets, lifecycle.

Differential coverage (the async loop changes latency, never decisions)
runs against the real engine; the scheduling-sensitive behaviours
(backpressure, batching, FIFO order) run against a blocking stub engine
so they are deterministic rather than timing-dependent.
"""

import threading
from types import SimpleNamespace

import numpy as np
import pytest

import repro
from repro.experiments.runner import make_scheme
from repro.experiments.scenarios import ScenarioSpec
from repro.options import ServiceOptions
from repro.service import (AdmissionEngine, AdmissionService, ServiceClosed,
                           ServiceOverloaded, generate_load)
from repro.sim import simulate
from repro.telemetry import get_registry, use_registry


def ordered(workload):
    return sorted(workload.requests, key=lambda r: (r.arrival, r.rid))


def live_service(scenario, **service_kwargs):
    options = ServiceOptions(**service_kwargs)
    engine = AdmissionEngine(
        make_scheme("Pretium"), scenario.workload.topology,
        n_steps=scenario.workload.n_steps,
        steps_per_day=scenario.workload.steps_per_day, options=options)
    return AdmissionService(engine, options)


# -- differential through the async loop --------------------------------------

def test_async_replay_with_batching_is_bit_identical_to_batch():
    scenario = ScenarioSpec.of("tiny").build(seed=3)
    batch = simulate(make_scheme("Pretium"), scenario.workload)
    with live_service(scenario, batch_window=0.002, batch_max=16) as svc:
        futures = [svc.submit(r) for r in ordered(scenario.workload)]
        decisions = [f.result(timeout=30) for f in futures]
        live = svc.stop()
    assert {d.rid for d in decisions if d.admitted} == set(batch.chosen)
    assert live.chosen == batch.chosen
    assert live.delivered == batch.delivered
    assert live.payments == batch.payments
    assert np.array_equal(live.loads, batch.loads)


def test_interleaved_price_checks_change_no_decisions():
    scenario = ScenarioSpec.of("tiny").build(seed=3)
    batch = simulate(make_scheme("Pretium"), scenario.workload)
    with use_registry():
        with live_service(scenario) as svc:
            report = generate_load(svc, ordered(scenario.workload),
                                   price_checks=2)
            live = svc.stop()
        hits = get_registry().counter("service.menu_cache.hits").value
    assert report.errors == 0
    assert report.price_checks == 2 * len(scenario.workload.requests)
    assert hits > 0
    assert live.chosen == batch.chosen
    assert live.payments == batch.payments


# -- deadline budgets ----------------------------------------------------------

def test_spent_quote_budget_degrades_instead_of_blocking():
    scenario = ScenarioSpec.of("tiny").build(seed=0)
    with use_registry():
        with live_service(scenario, quote_deadline=1e-9) as svc:
            futures = [svc.submit(r) for r in ordered(scenario.workload)]
            decisions = [f.result(timeout=30) for f in futures]
            live = svc.stop()
        registry = get_registry()
        degraded = registry.counter("service.degraded").value
    streamed = [d for d, r in zip(decisions, ordered(scenario.workload))
                if not r.scavenger]
    assert streamed and all(d.degraded for d in streamed)
    assert degraded == len(streamed)
    # every degradation left its audit waiver in the scheme's event log
    events = live.extras["degradation"]
    assert len(events) == len(streamed)
    assert {e["action"] for e in events} == {"quote_from_prices"}
    assert {e["error"] for e in events} == {"QuoteBudgetExceeded"}


def test_degraded_service_trace_still_audits_clean(tmp_path):
    trace = tmp_path / "degraded.jsonl"
    scenario = ScenarioSpec.of("tiny").build(seed=0)
    with repro.serve("Pretium", scenario,
                     options=repro.RunOptions(telemetry=trace),
                     service_options=ServiceOptions(
                         quote_deadline=1e-9)) as svc:
        for request in ordered(scenario.workload):
            svc.submit(request)
        svc.close()
    report = repro.audit(trace)
    assert report.ok, [f.detail for f in report.unwaived]
    assert any(f.waived for f in report.findings) or not report.findings


def test_generous_budget_never_degrades():
    scenario = ScenarioSpec.of("tiny").build(seed=0)
    with live_service(scenario, quote_deadline=300.0) as svc:
        futures = [svc.submit(r) for r in ordered(scenario.workload)]
        decisions = [f.result(timeout=30) for f in futures]
        svc.stop()
    assert not any(d.degraded for d in decisions)


# -- lifecycle and error propagation ------------------------------------------

def test_lifecycle_misuse_raises_service_closed():
    scenario = ScenarioSpec.of("tiny").build(seed=0)
    svc = live_service(scenario)
    with pytest.raises(ServiceClosed):
        svc.submit(scenario.workload.requests[0])    # never started
    with pytest.raises(ServiceClosed):
        svc.stop()                                   # never started
    svc.start()
    with pytest.raises(ServiceClosed):
        svc.start()                                  # double start
    first = svc.stop()
    assert svc.stop() is first                       # idempotent
    with pytest.raises(ServiceClosed):
        svc.submit(scenario.workload.requests[0])    # after stop


def test_submission_errors_belong_to_their_future():
    scenario = ScenarioSpec.of("tiny").build(seed=0)
    workload = scenario.workload
    good = ordered(workload)[0]
    bad = type(good)(rid=10_000, src=good.src, dst=good.dst, demand=1.0,
                     arrival=good.arrival, start=good.arrival,
                     deadline=workload.n_steps + 1, value=1.0)
    with live_service(scenario) as svc:
        doomed = svc.submit(bad)
        fine = svc.submit(good)
        with pytest.raises(ValueError, match="past the service horizon"):
            doomed.result(timeout=30)
        assert fine.result(timeout=30).rid == good.rid   # loop survived
        svc.stop()


# -- scheduling behaviours, against a deterministic stub ----------------------

class BlockingEngine:
    """Engine stub whose admit() blocks until released — makes queue
    depth, batching and overload states deterministic in tests."""

    def __init__(self, options):
        self.options = options
        self.scheme = SimpleNamespace()      # no admission interface
        self.release = threading.Event()
        self.processed = []

    def start(self):
        return self

    def admit(self, request, step=None):
        self.release.wait(timeout=30)
        self.processed.append(request)
        return SimpleNamespace(rid=request, step=0, admitted=True,
                               degraded=False)

    def quote_only(self, request, step=None):
        self.processed.append(("quote", request))
        return SimpleNamespace(rid=request, cached=False)

    def finish(self):
        return "finished"


def test_backpressure_fails_fast_when_asked_not_to_wait():
    options = ServiceOptions(max_pending=1)
    engine = BlockingEngine(options)
    svc = AdmissionService(engine, options).start()
    try:
        first = svc.submit("r1")             # takes the only slot
        with pytest.raises(ServiceOverloaded):
            svc.submit("r2", wait=False)
        with pytest.raises(ServiceOverloaded):
            svc.submit("r3", timeout=0.01)   # bounded wait, same outcome
        engine.release.set()
        assert first.result(timeout=30).admitted
        # slot freed: submissions flow again
        assert svc.submit("r4").result(timeout=30).rid == "r4"
    finally:
        engine.release.set()
        assert svc.stop() == "finished"
    assert svc.result == "finished"


def test_bursts_are_micro_batched_in_fifo_order():
    options = ServiceOptions(batch_max=8)
    engine = BlockingEngine(options)
    with use_registry():
        svc = AdmissionService(engine, options).start()
        first = svc.submit("r0")             # loop blocks processing this
        burst = [svc.submit(f"r{n}") for n in range(1, 6)]
        engine.release.set()
        for future in [first, *burst]:
            future.result(timeout=30)
        svc.stop()
        batches = get_registry().histogram("service.batch_size")
    assert engine.processed == [f"r{n}" for n in range(6)]   # FIFO
    assert batches.max >= 5      # the burst was drained as one batch


def test_batch_max_caps_one_batch():
    options = ServiceOptions(batch_max=2)
    engine = BlockingEngine(options)
    with use_registry():
        svc = AdmissionService(engine, options).start()
        futures = [svc.submit(f"r{n}") for n in range(7)]
        engine.release.set()
        for future in futures:
            future.result(timeout=30)
        svc.stop()
        batches = get_registry().histogram("service.batch_size")
    assert batches.max <= 2
    assert engine.processed == [f"r{n}" for n in range(7)]


def test_stop_answers_everything_enqueued_before_it():
    options = ServiceOptions()
    engine = BlockingEngine(options)
    svc = AdmissionService(engine, options).start()
    futures = [svc.submit(f"r{n}") for n in range(4)]
    engine.release.set()
    assert svc.stop() == "finished"
    assert [f.result(timeout=0).rid for f in futures] == \
        [f"r{n}" for n in range(4)]
