"""Menu-cache correctness: version invalidation, LRU, never-stale.

The load-bearing property: a cached menu is served only while every
link its (src, dst) routes can touch is version-unchanged — so a PC
price update on any cached path invalidates the entry, and a quote
through the cache is always bit-identical to a cold quote.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import PretiumController
from repro.core.admission import RequestAdmission
from repro.experiments.scenarios import tiny_scenario
from repro.service import MenuCache
from repro.telemetry import get_registry


@pytest.fixture(scope="module")
def scenario():
    return tiny_scenario(seed=0)


def fresh_controller(scenario, cache=None):
    controller = PretiumController()
    controller.menu_cache = cache
    controller.begin(scenario.workload)
    return controller


def pick_request(scenario, index=0):
    requests = [r for r in scenario.workload.requests if not r.scavenger]
    return requests[index]


def fingerprint(menu):
    return (tuple(menu.breakpoints()), float(menu.max_guaranteed))


# -- basic behaviour ----------------------------------------------------------

def test_cache_rejects_nonpositive_capacity():
    with pytest.raises(ValueError):
        MenuCache(0)


def test_unbound_cache_refuses_lookups(scenario):
    cache = MenuCache()
    with pytest.raises(RuntimeError):
        cache.get(pick_request(scenario), 0)


def test_hit_returns_the_identical_menu_object(scenario):
    controller = fresh_controller(scenario, MenuCache())
    request = pick_request(scenario)
    registry = get_registry()
    hits = registry.counter("service.menu_cache.hits")
    before = hits.value
    first = controller.admission.quote(request, 0)
    second = controller.admission.quote(request, 0)
    assert second is first          # served from cache, not re-derived
    assert hits.value == before + 1


def test_key_folds_effective_start(scenario):
    # Past its start step, a request re-quoted later keys differently:
    # the quotable window shrank, so the menus are different objects.
    request = pick_request(scenario)
    assert MenuCache.key(request, request.start) != \
        MenuCache.key(request, request.start + 1)
    assert MenuCache.key(request, 0) == MenuCache.key(request, request.start)


def test_reservation_on_involved_link_invalidates(scenario):
    controller = fresh_controller(scenario, MenuCache())
    cache = controller.menu_cache
    request = pick_request(scenario)
    menu = controller.admission.quote(request, 0)
    links = cache._involved_links(request)
    controller.state.reserve(10_000, (int(links[0]),), request.start, 1.0)
    assert cache.get(request, 0) is None        # stale entry dropped
    requote = controller.admission.quote(request, 0)
    assert requote is not menu                  # re-derived, not served stale


def test_lru_eviction_keeps_capacity_bounded(scenario):
    controller = fresh_controller(scenario, MenuCache(max_entries=3))
    cache = controller.menu_cache
    requests = [pick_request(scenario, i) for i in range(5)]
    for request in requests:
        controller.admission.quote(request, 0)
    assert len(cache) == 3
    # the two oldest are gone, the three newest are present
    assert MenuCache.key(requests[0], 0) not in cache
    assert MenuCache.key(requests[1], 0) not in cache
    for request in requests[2:]:
        assert MenuCache.key(request, 0) in cache


def test_bind_clears_previous_runs_entries(scenario):
    cache = MenuCache()
    controller = fresh_controller(scenario, cache)
    controller.admission.quote(pick_request(scenario), 0)
    assert len(cache) == 1
    controller.begin(scenario.workload)     # re-binds the same cache
    assert len(cache) == 0


# -- satellite: price updates invalidate cached paths -------------------------

@settings(max_examples=25, deadline=None)
@given(link_offset=st.integers(min_value=0, max_value=10_000),
       factor=st.floats(min_value=1.1, max_value=10.0),
       request_index=st.integers(min_value=0, max_value=7))
def test_any_price_update_on_a_cached_path_invalidates(link_offset, factor,
                                                       request_index):
    """Property: after a PC-style price update touching any link of a
    cached (src, dst) path, the entry is invalidated; either way the
    next quote is bit-identical to a cold (cache-less) quote."""
    scenario = tiny_scenario(seed=0)
    controller = fresh_controller(scenario, MenuCache())
    cache = controller.menu_cache
    state = controller.state
    request = pick_request(scenario, request_index)
    now = 0
    controller.admission.quote(request, now)
    involved = set(int(i) for i in cache._involved_links(request))

    # A price update exactly as the PC installs one: a (W, n_links)
    # grid through set_prices, with one link's prices perturbed.
    link = link_offset % state.topology.num_links
    window = controller.config.window
    new_prices = state.prices[:window].copy()
    new_prices[:, link] *= factor
    state.set_prices(0, new_prices)

    entry = cache.get(request, now)
    if link in involved:
        assert entry is None, \
            "price update on an involved link must invalidate the entry"
    else:
        assert entry is not None, \
            "price update elsewhere must not evict unrelated entries"

    served = controller.admission.quote(request, now)
    cold = RequestAdmission(state).quote(request, now)
    assert fingerprint(served) == fingerprint(cold)


def test_stale_menu_never_served_across_price_update_tick():
    """Regression: quote cached before a price-update tick, re-quoted
    after it — the served menu must reflect the new prices, not the
    cached pre-update ones."""
    scenario = tiny_scenario(seed=0)
    controller = fresh_controller(scenario, MenuCache())
    state = controller.state
    request = pick_request(scenario)
    before = controller.admission.quote(request, 0)

    # Double every involved link's price, PC-style.
    involved = controller.menu_cache._involved_links(request)
    window = controller.config.window
    new_prices = state.prices[:window].copy()
    new_prices[:, involved] *= 2.0
    state.set_prices(0, new_prices)
    invalidations = get_registry().counter(
        "service.menu_cache.invalidations")
    count = invalidations.value

    after = controller.admission.quote(request, 0)
    assert invalidations.value == count + 1
    assert fingerprint(after) != fingerprint(before)
    cold = RequestAdmission(state).quote(request, 0)
    assert fingerprint(after) == fingerprint(cold)
    # every quoted unit got exactly twice as expensive
    old_prices = dict()
    for (volume, price), (volume2, price2) in zip(before.breakpoints(),
                                                  after.breakpoints()):
        assert volume2 == pytest.approx(volume)
        assert price2 == pytest.approx(2.0 * price)


def test_unchanged_links_keep_their_entries_after_reinstall():
    """set_prices with identical values bumps no versions: re-installing
    the same price grid must not shred the warm cache."""
    scenario = tiny_scenario(seed=0)
    controller = fresh_controller(scenario, MenuCache())
    state = controller.state
    request = pick_request(scenario)
    menu = controller.admission.quote(request, 0)
    versions = state.link_versions.copy()
    state.set_prices(0, state.prices[:controller.config.window].copy())
    assert np.array_equal(state.link_versions, versions)
    assert controller.admission.quote(request, 0) is menu
