"""Engine differential: streamed arrivals == batch ``simulate()``.

The acceptance bar for the service core: replaying a workload's arrival
stream through :class:`AdmissionEngine` yields bit-identical admit/
reject decisions, settlements, loads and summaries to the batch
simulator — including under injected fault schedules and with the warm
menu cache on or off.
"""

import numpy as np
import pytest

from repro.experiments.runner import make_scheme, run_scheme
from repro.experiments.scenarios import ScenarioSpec
from repro.options import RunOptions, ServiceOptions, run_context
from repro.service import AdmissionEngine, ServiceStateError
from repro.sim import simulate, summarize


def build_engine(workload, scheme=None, **service_kwargs):
    return AdmissionEngine(
        scheme or make_scheme("Pretium"), workload.topology,
        n_steps=workload.n_steps, steps_per_day=workload.steps_per_day,
        options=ServiceOptions(**service_kwargs),
        load_factor=workload.load_factor,
        description=workload.description)


def replay(scenario, scheme=None, price_checks=0, **service_kwargs):
    """Stream the scenario's requests through an engine, in order."""
    engine = build_engine(scenario.workload, scheme, **service_kwargs)
    engine.start()
    stream = sorted(scenario.workload.requests,
                    key=lambda r: (r.arrival, r.rid))
    for request in stream:
        for _ in range(price_checks):
            engine.quote_only(request)
        engine.admit(request)
    return engine


def comparable(summary):
    return {k: v for k, v in summary.items() if k != "runtimes"}


def assert_results_identical(batch, live, cost_model):
    assert live.chosen == batch.chosen
    assert live.delivered == batch.delivered
    assert live.payments == batch.payments
    assert live.delivery_log == batch.delivery_log
    assert np.array_equal(live.loads, batch.loads)
    assert np.array_equal(live.extras["prices"], batch.extras["prices"])
    assert comparable(summarize(live, cost_model)) == \
        comparable(summarize(batch, cost_model))


@pytest.mark.parametrize("seed", [0, 3])
def test_streamed_replay_is_bit_identical_to_batch(seed):
    scenario = ScenarioSpec.of("tiny").build(seed=seed)
    batch = simulate(make_scheme("Pretium"), scenario.workload)
    engine = replay(scenario)
    assert_results_identical(batch, engine.finish(), scenario.cost_model)
    admitted = {d.rid for d in engine.decisions if d.admitted}
    assert admitted == set(batch.chosen)
    for decision in engine.decisions:
        if decision.admitted:
            assert decision.chosen == batch.chosen[decision.rid]


def test_streamed_replay_identical_under_injected_faults():
    options = RunOptions(faults="sam:solver@2x1,ra:timeout@3x1",
                        fault_seed=7)
    scenario = ScenarioSpec.of("tiny").build(seed=3)
    batch = run_scheme("Pretium", scenario, options=options)
    assert batch.extras.get("degradation"), "fault schedule never fired"
    with run_context(options):
        engine = replay(scenario)
        live = engine.finish()
    assert_results_identical(batch, live, scenario.cost_model)
    assert live.extras["degradation"] == batch.extras["degradation"]
    assert any(d.degraded for d in engine.decisions) == \
        any(e["module"] == "ra" for e in batch.extras["degradation"])


def test_cold_cache_and_price_checks_change_nothing():
    scenario = ScenarioSpec.of("tiny").build(seed=3)
    warm = replay(scenario, price_checks=2)
    cold = replay(ScenarioSpec.of("tiny").build(seed=3), cache_size=0)
    assert warm.decisions == cold.decisions
    assert_results_identical(cold.finish(), warm.finish(),
                             scenario.cost_model)


def test_quote_only_reports_cache_hits():
    scenario = ScenarioSpec.of("tiny").build(seed=0)
    engine = build_engine(scenario.workload).start()
    request = next(r for r in scenario.workload.requests
                   if not r.scavenger)
    first = engine.quote_only(request)
    second = engine.quote_only(request)
    assert not first.cached and second.cached
    assert second.breakpoints == first.breakpoints
    assert first.max_guaranteed > 0


def test_advance_to_runs_empty_steps_like_batch():
    scenario = ScenarioSpec.of("tiny").build(seed=0)
    batch = simulate(make_scheme("Pretium"), scenario.workload)
    engine = build_engine(scenario.workload).start()
    # jump straight past several arrival-free and arrival-bearing steps,
    # skipping the requests entirely: loads must match a no-arrival run
    engine.advance_to(scenario.workload.n_steps - 1)
    live = engine.finish()
    assert live.chosen == {}
    assert not np.array_equal(live.loads, batch.loads) or \
        not batch.chosen  # sanity: skipping arrivals changed the run


def test_protocol_misuse_raises():
    scenario = ScenarioSpec.of("tiny").build(seed=0)
    workload = scenario.workload
    engine = build_engine(workload)
    with pytest.raises(ServiceStateError):
        engine.advance_to(0)            # not started
    engine.start()
    with pytest.raises(ServiceStateError):
        engine.start()                  # double start
    engine.advance_to(2)
    with pytest.raises(ServiceStateError):
        engine.advance_to(1)            # time moved backwards
    with pytest.raises(ServiceStateError):
        engine.advance_to(workload.n_steps)  # past the horizon
    request = workload.requests[0]
    bad = type(request)(rid=10_000, src=request.src, dst=request.dst,
                        demand=1.0, arrival=2, start=2,
                        deadline=workload.n_steps + 5, value=1.0)
    with pytest.raises(ValueError, match="past the service horizon"):
        engine.admit(bad)
    result = engine.finish()
    assert engine.finish() is result    # idempotent
    with pytest.raises(ServiceStateError):
        engine.admit(request)           # finished engines refuse work
