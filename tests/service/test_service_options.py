"""Tests for the :class:`repro.options.ServiceOptions` bundle.

Mirrors the :class:`RunOptions` contract: eager validation at
construction, frozen + picklable, ``replace()`` for variants, and the
knobs reachable end-to-end through :func:`repro.serve` and the CLI.
"""

import dataclasses
import pickle

import pytest

import repro
from repro.options import ServiceOptions


def test_defaults_are_live_service_shaped():
    options = ServiceOptions()
    assert options.batch_window == 0.0
    assert options.batch_max >= 1
    assert options.cache_size > 0          # warm cache on by default
    assert options.quote_deadline is None  # no budget unless asked
    assert options.max_pending >= 1


@pytest.mark.parametrize("kwargs", [
    dict(batch_window=-0.1),
    dict(batch_max=0),
    dict(cache_size=-1),
    dict(quote_deadline=0.0),
    dict(quote_deadline=-1.0),
    dict(max_pending=0),
    dict(metrics_port=-1),
    dict(metrics_port=65536),
    dict(metrics_snapshot_period=-0.5),
])
def test_invalid_values_rejected_eagerly(kwargs):
    with pytest.raises(ValueError):
        ServiceOptions(**kwargs)


def test_boundary_values_accepted():
    options = ServiceOptions(batch_window=0.0, batch_max=1, cache_size=0,
                             quote_deadline=1e-9, max_pending=1)
    assert options.cache_size == 0


def test_frozen_replace_and_pickle_roundtrip():
    options = ServiceOptions(batch_window=0.01, cache_size=64)
    with pytest.raises(dataclasses.FrozenInstanceError):
        options.cache_size = 0
    variant = options.replace(cache_size=0)
    assert variant.cache_size == 0
    assert variant.batch_window == options.batch_window
    assert options.cache_size == 64        # original untouched
    clone = pickle.loads(pickle.dumps(options))
    assert clone == options


def test_service_options_exported_from_api():
    assert repro.ServiceOptions is ServiceOptions


def test_serve_threads_options_through_to_engine_and_service():
    service_options = ServiceOptions(cache_size=7, batch_max=3,
                                     max_pending=5)
    with repro.serve("Pretium", "tiny",
                     service_options=service_options) as svc:
        assert svc.service.options is service_options
        assert svc.engine.options is service_options
        cache = svc.engine.scheme.menu_cache
        assert cache is not None and cache.max_entries == 7
        svc.close()


def test_serve_with_cache_disabled_builds_no_cache():
    with repro.serve(
            "Pretium", "tiny",
            service_options=ServiceOptions(cache_size=0)) as svc:
        assert svc.engine.scheme.menu_cache is None
        assert svc.engine.scheme.admission.cache is None
        svc.close()


def test_metrics_port_default_runs_no_server():
    with repro.serve("Pretium", "tiny") as svc:
        assert svc.service.metrics_server is None
        svc.close()


def test_metrics_bind_conflict_fails_start_and_stops_loop():
    """A taken metrics port must not leave a half-started service: the
    loop thread is torn down and the failure surfaces to the caller."""
    from repro.telemetry import MetricsRegistry
    from repro.telemetry.live import LiveMetricsServer

    squatter = LiveMetricsServer(MetricsRegistry(), port=0,
                                 snapshot_period=0).start()
    try:
        with pytest.raises(OSError):
            repro.serve("Pretium", "tiny",
                        service_options=ServiceOptions(
                            metrics_port=squatter.port))
    finally:
        squatter.stop()
