"""Tests for the stable :mod:`repro.api` facade."""

import pytest

import repro
from repro.api import AuditReport, RunReport, audit, campaign, run, sweep
from repro.experiments.scenarios import ScenarioSpec, tiny_scenario
from repro.options import RunOptions


def test_package_reexports_the_facade():
    assert repro.run is run
    assert repro.sweep is sweep
    assert repro.audit is audit
    assert repro.campaign is campaign
    assert repro.RunOptions is RunOptions
    for name in repro.__all__:
        assert getattr(repro, name) is not None


def test_run_accepts_name_spec_and_built_scenario():
    by_name = run("NoPrices", "tiny")
    assert isinstance(by_name, RunReport)
    assert by_name.scheme == "NoPrices"
    assert by_name.trace_path is None
    by_spec = run("NoPrices", ScenarioSpec.of("tiny"))
    by_built = run("NoPrices", tiny_scenario())
    assert by_name.summary == by_spec.summary == by_built.summary
    assert "welfare" in by_name.summary


def test_run_rejects_unknown_scenario_kinds():
    with pytest.raises(ValueError, match="unknown scenario"):
        run("NoPrices", "gigantic")
    with pytest.raises(TypeError, match="cannot interpret"):
        run("NoPrices", 42)


def test_run_sweep_audit_compose(tmp_path):
    trace = tmp_path / "sweep.jsonl"
    result = sweep({"schemes": ["Pretium", "NoPrices"],
                    "scenarios": ["tiny"], "seeds": [0]},
                   options=RunOptions(workers=2, telemetry=trace))
    assert result.ok
    assert result.trace_path == str(trace)

    report = audit(trace)
    assert isinstance(report, AuditReport)
    assert report.ok
    assert report.unwaived == []
    assert report.n_events > 0

    # audit also accepts pre-loaded events
    from repro.telemetry import read_trace
    assert audit(read_trace(trace)).ok


def test_sweep_rejects_unknown_grid_keys():
    with pytest.raises(TypeError, match="'scheme'"):
        sweep({"scheme": ["Pretium"]})
    with pytest.raises(TypeError, match="cannot interpret"):
        sweep(["Pretium"])


def test_campaign_facade_accepts_preset_dict_and_spec(tmp_path):
    from repro.experiments.campaign import CampaignError, CampaignSpec

    result = campaign("smoke", tmp_path / "preset",
                      options=RunOptions(workers=1))
    assert isinstance(result, repro.CampaignResult)
    # 2 tiny cells plus the multiclass/flowlet cell.
    assert result.ok and result.n_cells == 3
    assert result.sweeps["main"].n_workers == 1  # override beat the spec
    assert result.report_md.exists()

    raw = {"campaign": {"name": "d"},
           "sweeps": [{"name": "s", "schemes": ["NoPrices"],
                       "scenario": "tiny", "seeds": [0]}]}
    by_dict = campaign(raw, tmp_path / "dict")
    assert by_dict.ok and by_dict.n_cells == 1
    by_spec = campaign(CampaignSpec.from_dict(raw), tmp_path / "spec")
    assert by_spec.ok

    with pytest.raises(CampaignError, match="neither a campaign preset"):
        campaign("no-such-campaign", tmp_path / "x")


def test_run_with_trace_reports_its_path(tmp_path):
    trace = tmp_path / "run.jsonl"
    report = run("Pretium", "tiny",
                 options=RunOptions(telemetry=trace))
    assert report.trace_path == str(trace)
    assert trace.exists()
    assert audit(trace, summary=report.summary).ok


# -- traffic classes and routing through the facade ---------------------------

def test_run_folds_options_classes_into_named_scenarios():
    report = run("NoPrices", "tiny",
                 options=RunOptions(classes="qos3"))
    assert set(report.summary["per_class"]) == \
        {"interactive", "elastic", "background"}
    # A built scenario keeps its own (lack of) classes.
    plain = run("NoPrices", tiny_scenario())
    assert "per_class" not in plain.summary


def test_run_keeps_scenario_declared_classes_over_options():
    spec = ScenarioSpec.of("tiny", classes="default")
    report = run("NoPrices", spec, options=RunOptions(classes="qos3"))
    assert set(report.summary["per_class"]) == {"default"}


def test_scenario_coercion_error_names_the_registry():
    with pytest.raises(TypeError, match="repro.registry.SCENARIOS"):
        run("NoPrices", 42)


def test_sweep_grid_accepts_a_routings_axis(tmp_path):
    result = sweep({"schemes": ["NoPrices"], "scenarios": ["tiny"],
                    "seeds": [0], "routings": ["kpaths", "flowlet"]})
    assert result.ok
    labels = [cell.label for cell in result.cells]
    assert any("routing=flowlet" in label for label in labels)
    assert len(result.cells) == 2
