"""Differential tests for SAM's incremental machinery.

Three layers, matching the three incremental paths:

- **skeleton patching** — a hypothesis property drives two adjusters
  (skeleton cache on / off) through arbitrary arrival/settlement
  sequences and asserts the models they hand the solver assemble to the
  *identical* matrix, step by step.  Patching is pure assembly reuse;
  any difference at all is a bug.
- **quiet-step fast path** — unit tests for every trigger and every
  fallback: consecutive armed steps reuse the tail; arrivals, capacity
  changes, off-plan execution, skipped steps and guarantee-drop solves
  all force the exact solve.
- **end-to-end differentials** — full simulations (stock arrivals +
  injected faults, where the fast path never fires) must be
  bit-identical to the cold reference; gapped-arrival runs (where it
  fires constantly) must make identical admission decisions with equal
  payment/delivered totals — the fast path reuses *an* optimum of a
  degenerate LP, so per-request splits may legitimately sit on another
  optimal vertex.
"""

import dataclasses
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import run
from repro.core import (ByteRequest, NetworkState, PretiumConfig,
                        RequestAdmission, ScheduleAdjuster,
                        transmissions_now)
from repro.core.sam import _ContractSkeleton
from repro.experiments.scenarios import tiny_scenario
from repro.faults import FaultInjector
from repro.lp.solver import _assemble
from repro.network import parallel_paths_network
from repro.options import RunOptions
from repro.telemetry import MetricsRegistry, use_registry


def setup(n_steps=6, billing_window=6, **config_kwargs):
    topology = parallel_paths_network(10.0, 10.0)
    defaults = dict(window=3, lookback=3, initial_price=1.0,
                    short_term_adjustment=False)
    defaults.update(config_kwargs)
    state = NetworkState(topology, n_steps, PretiumConfig(**defaults))
    return (state, RequestAdmission(state),
            ScheduleAdjuster(state, billing_window))


def admit(ra, req, now=0):
    menu = ra.quote(req, now=now)
    return ra.admit(req, menu, req.demand, now)


def loads_for(state):
    return np.zeros((state.n_steps, state.topology.num_links))


class CapturingAdjuster(ScheduleAdjuster):
    """ScheduleAdjuster that keeps every model it hands the solver."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.models = []

    def _solve_lp(self, model, now):
        self.models.append(model)
        return super()._solve_lp(model, now)


def assert_models_identical(a, b):
    """The two models assemble to the same linprog inputs, bit for bit."""
    ca, consta, A_ub_a, b_ub_a, A_eq_a, b_eq_a, bounds_a, _ = _assemble(a)
    cb, constb, A_ub_b, b_ub_b, A_eq_b, b_eq_b, bounds_b, _ = _assemble(b)
    np.testing.assert_array_equal(ca, cb)
    assert consta == constb
    assert bounds_a == bounds_b
    for Ma, Mb, va, vb in ((A_ub_a, A_ub_b, b_ub_a, b_ub_b),
                           (A_eq_a, A_eq_b, b_eq_a, b_eq_b)):
        assert (Ma is None) == (Mb is None)
        if Ma is not None:
            assert Ma.shape == Mb.shape
            assert (Ma != Mb).nnz == 0
            np.testing.assert_array_equal(va, vb)


# -- skeleton patching: hypothesis differential -----------------------------

@st.composite
def arrival_patterns(draw):
    """A small workload as (arrival, duration, demand) triples."""
    n = draw(st.integers(min_value=1, max_value=6))
    out = []
    for rid in range(1, n + 1):
        arrival = draw(st.integers(min_value=0, max_value=4))
        duration = draw(st.integers(min_value=0, max_value=3))
        demand = draw(st.integers(min_value=1, max_value=6))
        out.append((rid, arrival, duration, float(demand)))
    return out


@settings(max_examples=20, deadline=None)
@given(pattern=arrival_patterns())
def test_patched_models_assemble_identically(pattern):
    """Arbitrary arrival/settlement sequences: the cached-skeleton model
    and the fresh-build model are the same matrix at every step."""
    n_steps = 8
    with use_registry(MetricsRegistry()):
        worlds = {}
        for key, cached in (("cached", True), ("fresh", False)):
            topology = parallel_paths_network(10.0, 10.0)
            config = PretiumConfig(window=3, lookback=3, initial_price=1.0,
                                   short_term_adjustment=False,
                                   sam_skeleton_cache=cached,
                                   sam_fast_path=False)
            state = NetworkState(topology, n_steps, config)
            worlds[key] = (state, RequestAdmission(state),
                           CapturingAdjuster(state, n_steps))

        contracts = {"cached": [], "fresh": []}
        delivered = {}
        loads = loads_for(worlds["cached"][0])
        for t in range(n_steps):
            plans = {}
            for key in ("cached", "fresh"):
                state, ra, sam = worlds[key]
                for rid, arrival, duration, demand in pattern:
                    if arrival != t:
                        continue
                    deadline = min(n_steps - 1, arrival + duration)
                    req = ByteRequest(rid, "S", "T", demand, arrival,
                                      arrival, deadline, 5.0)
                    contracts[key].append(admit(ra, req, now=t))
                plans[key] = sam.adjust(contracts[key], dict(delivered),
                                        loads, t) or []
            sam_a, sam_b = worlds["cached"][2], worlds["fresh"][2]
            assert len(sam_a.models) == len(sam_b.models)
            if sam_a.models:
                assert_models_identical(sam_a.models[-1], sam_b.models[-1])
            # Execute the fresh-build plan in both worlds so the next
            # step's inputs stay in lockstep.
            for tx in transmissions_now(plans["fresh"], t):
                delivered[tx.rid] = delivered.get(tx.rid, 0.0) + tx.volume
                for index in tx.links:
                    loads[t, index] += tx.volume


def test_skeleton_trim_matches_fresh_build():
    """Trimming a cached skeleton by ``delta`` steps yields exactly the
    arrays a fresh build at the later first-step produces."""
    state, _, _ = setup(n_steps=8)
    routes = state.paths.routes("S", "T")
    full = _ContractSkeleton.build(routes, first=1, deadline=6)
    for first in range(1, 7):
        fresh = _ContractSkeleton.build(routes, first=first, deadline=6)
        steps, links, rel_steps, rel_vars = full.sliced(first)
        np.testing.assert_array_equal(steps, fresh.steps)
        np.testing.assert_array_equal(links, fresh.rel_links)
        np.testing.assert_array_equal(rel_steps, fresh.rel_steps)
        np.testing.assert_array_equal(rel_vars, fresh.rel_vars)


# -- quiet-step fast path ---------------------------------------------------

def executed(plan, t):
    """Delivered totals after executing step ``t`` in plan order."""
    delivered = {}
    for tx in transmissions_now(plan, t):
        delivered[tx.rid] = delivered.get(tx.rid, 0.0) + tx.volume
    return delivered


def armed_world():
    """One contract admitted and planned at step 0 (adjuster armed)."""
    state, ra, sam = setup(n_steps=6)
    req = ByteRequest(1, "S", "T", 12.0, 0, 0, 4, 5.0)
    contract = admit(ra, req)
    plan = sam.adjust([contract], {}, loads_for(state), 0,
                      arrivals_since=1)
    return state, sam, contract, plan


def test_quiet_step_reuses_tail():
    with use_registry(MetricsRegistry()) as registry:
        state, sam, contract, plan = armed_world()
        tail = sam.adjust([contract], executed(plan, 0), loads_for(state),
                          1, arrivals_since=0)
        assert sam.last_fast_path
        assert tail == [tx for tx in plan if tx.timestep >= 1]
        assert registry.counter("sam.fast_path.hits").value == 1
        # The reused tail still covers the whole remaining demand: an
        # optimal tail of the old optimum (pin-and-solve argument).
        total = sum(tx.volume for tx in plan)
        assert total == pytest.approx(12.0)


def test_consecutive_quiet_steps_keep_reusing():
    with use_registry(MetricsRegistry()) as registry:
        state, sam, contract, plan = armed_world()
        delivered = {}
        for t in (1, 2, 3):
            for rid, vol in executed(plan, t - 1).items():
                delivered[rid] = delivered.get(rid, 0.0) + vol
            plan = sam.adjust([contract], dict(delivered), loads_for(state),
                              t, arrivals_since=0)
            if not plan:
                break
            assert sam.last_fast_path
        assert registry.counter("sam.fast_path.hits").value >= 2
        assert "sam.fast_path.misses" not in registry


def test_arrival_forces_exact_solve():
    with use_registry(MetricsRegistry()) as registry:
        state, sam, contract, plan = armed_world()
        sam.adjust([contract], executed(plan, 0), loads_for(state), 1,
                   arrivals_since=2)
        assert not sam.last_fast_path
        # Not even attempted: an offered arrival is not a quiet step.
        assert "sam.fast_path.hits" not in registry
        assert "sam.fast_path.misses" not in registry


def test_unknown_arrivals_disable_fast_path():
    with use_registry(MetricsRegistry()) as registry:
        state, sam, contract, plan = armed_world()
        sam.adjust([contract], executed(plan, 0), loads_for(state), 1)
        assert not sam.last_fast_path
        assert "sam.fast_path.hits" not in registry


def test_capacity_change_forces_exact_solve():
    with use_registry(MetricsRegistry()) as registry:
        state, sam, contract, plan = armed_world()
        state.fail_link("S", "M1", 1)
        sam.adjust([contract], executed(plan, 0), loads_for(state), 1,
                   arrivals_since=0)
        assert not sam.last_fast_path
        assert registry.counter("sam.fast_path.misses").value == 1


def test_off_plan_execution_forces_exact_solve():
    with use_registry(MetricsRegistry()) as registry:
        state, sam, contract, plan = armed_world()
        delivered = executed(plan, 0)
        delivered[1] = delivered.get(1, 0.0) + 0.5  # engine went off-plan
        sam.adjust([contract], delivered, loads_for(state), 1,
                   arrivals_since=0)
        assert not sam.last_fast_path
        assert registry.counter("sam.fast_path.misses").value == 1


def test_skipped_step_forces_exact_solve():
    with use_registry(MetricsRegistry()) as registry:
        state, sam, contract, plan = armed_world()
        sam.adjust([contract], executed(plan, 0), loads_for(state), 2,
                   arrivals_since=0)
        assert not sam.last_fast_path
        assert registry.counter("sam.fast_path.misses").value == 1


def test_guarantee_drop_never_arms():
    """A best-effort (guarantee-free) solve must not seed tail reuse:
    the next step has to retry with guarantees enforced."""
    injector = FaultInjector.from_spec("sam:infeasible@0x1")
    with use_registry(MetricsRegistry()) as registry:
        state, ra, _ = setup(n_steps=6)
        sam = ScheduleAdjuster(state, 6, injector=injector)
        req = ByteRequest(1, "S", "T", 12.0, 0, 0, 4, 5.0)
        contract = admit(ra, req)
        plan = sam.adjust([contract], {}, loads_for(state), 0,
                          arrivals_since=1)
        assert registry.counter(
            "resilience.guarantee_drops.sam").value == 1
        sam.adjust([contract], executed(plan, 0), loads_for(state), 1,
                   arrivals_since=0)
        assert not sam.last_fast_path
        assert registry.counter("sam.fast_path.misses").value == 1


def test_fast_path_disabled_by_config():
    with use_registry(MetricsRegistry()) as registry:
        state, ra, sam = setup(n_steps=6, sam_fast_path=False)
        req = ByteRequest(1, "S", "T", 12.0, 0, 0, 4, 5.0)
        contract = admit(ra, req)
        plan = sam.adjust([contract], {}, loads_for(state), 0,
                          arrivals_since=1)
        sam.adjust([contract], executed(plan, 0), loads_for(state), 1,
                   arrivals_since=0)
        assert not sam.last_fast_path
        assert "sam.fast_path.hits" not in registry
        assert "sam.fast_path.misses" not in registry


# -- end-to-end differentials ----------------------------------------------

COLD = dict(sam_skeleton_cache=False, sam_fast_path=False)


def _run(scenario, **knobs):
    with use_registry(MetricsRegistry()) as registry:
        result = run("Pretium", scenario,
                     options=RunOptions(solver_backend="scipy",
                                        **knobs)).result
        counters = {name: registry.counter(name).value
                    for name in ("sam.fast_path.hits",
                                 "sam.fast_path.misses")
                    if name in registry}
    return result, counters


def assert_bit_identical(a, b):
    assert a.chosen == b.chosen
    assert a.payments == b.payments
    assert a.delivered == b.delivered
    assert np.array_equal(a.loads, b.loads)


def test_stock_run_bit_identical_to_cold():
    """Arrivals every step: the fast path never fires and the whole
    incremental stack must reproduce the cold reference bit for bit."""
    cold, _ = _run(tiny_scenario(seed=0), **COLD)
    warm, counters = _run(tiny_scenario(seed=0))
    assert_bit_identical(warm, cold)
    assert counters.get("sam.fast_path.hits", 0) == 0


def test_faulted_run_bit_identical_to_cold():
    """Injected fault schedules (solver retries, timeouts, a dropped
    guarantee) must not change what the incremental paths compute."""
    faults = "sam:solver@2x1,pc:timeout@3x1,sam:infeasible@4x1"
    cold, _ = _run(tiny_scenario(seed=0), faults=faults, **COLD)
    warm, _ = _run(tiny_scenario(seed=0), faults=faults)
    assert_bit_identical(warm, cold)


def gapped_tiny(seed=0):
    """Tiny scenario with arrivals squeezed into the first two steps."""
    scenario = tiny_scenario(seed=seed)
    workload = scenario.workload
    requests = []
    for request in workload.requests:
        arrival = request.arrival % 2
        start = max(request.start, arrival)
        deadline = max(request.deadline,
                       min(workload.n_steps - 1, start + 3))
        requests.append(dataclasses.replace(
            request, arrival=arrival, start=start, deadline=deadline))
    requests.sort(key=lambda r: (r.arrival, r.rid))
    return dataclasses.replace(
        scenario, workload=dataclasses.replace(workload, requests=requests))


def test_gapped_run_fast_path_fires_and_preserves_economics():
    cold, _ = _run(gapped_tiny(), **COLD)
    fast, counters = _run(gapped_tiny())
    assert counters["sam.fast_path.hits"] > 0
    # Decisions are pinned; totals are pinned; per-request splits may
    # sit on another optimal vertex of the degenerate LP.
    assert fast.chosen == cold.chosen
    assert math.isclose(sum(fast.payments.values()),
                        sum(cold.payments.values()),
                        rel_tol=1e-9, abs_tol=1e-6)
    assert math.isclose(sum(fast.delivered.values()),
                        sum(cold.delivered.values()),
                        rel_tol=1e-9, abs_tol=1e-6)
