"""Tests for config derivations added during calibration."""

import pytest

from repro.core import PretiumConfig


def test_initial_leveling_default_is_window():
    config = PretiumConfig(window=12, lookback=12)
    assert config.initial_metered_leveling == 12


def test_initial_leveling_override():
    config = PretiumConfig(window=12, lookback=12,
                           initial_leveling_steps=3)
    assert config.initial_metered_leveling == 3


def test_initial_leveling_clamped_to_one():
    config = PretiumConfig(window=12, lookback=12,
                           initial_leveling_steps=0)
    assert config.initial_metered_leveling == 1


def test_ablation_flags_independent():
    nosam = PretiumConfig(sam_enabled=False)
    assert nosam.menu_enabled
    nomenu = PretiumConfig(menu_enabled=False)
    assert nomenu.sam_enabled
