"""Tests for price menus: convexity, marginals, best response (Thm 5.2)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MenuSegment, PriceMenu
from repro.network import line_network, Path


def _path():
    topo = line_network(2, capacity=100.0)
    return Path((topo.link_between("n0", "n1"),))


def make_menu(specs, best_effort=True):
    path = _path()
    segments = [MenuSegment(q, p, path, t) for q, p, t in specs]
    return PriceMenu(segments, best_effort=best_effort)


def test_empty_menu():
    menu = PriceMenu([])
    assert menu.is_empty
    assert menu.max_guaranteed == 0.0
    assert menu.price(0.0) == 0.0
    assert menu.price(1.0) == math.inf
    assert menu.marginal(0.0) == math.inf
    assert menu.best_response(10.0, 5.0) == 0.0


def test_price_accumulates_segments():
    menu = make_menu([(2.0, 1.0, 0), (3.0, 2.0, 1)])
    assert menu.price(0) == 0.0
    assert menu.price(1) == 1.0
    assert menu.price(2) == 2.0
    assert menu.price(3) == 4.0
    assert menu.price(5) == 8.0


def test_price_beyond_guarantee_uses_best_effort_rate():
    menu = make_menu([(2.0, 1.0, 0), (3.0, 2.0, 1)])
    assert menu.max_guaranteed == 5.0
    assert menu.best_effort_price == 2.0
    assert menu.price(7.0) == pytest.approx(8.0 + 2 * 2.0)


def test_price_beyond_guarantee_infinite_without_best_effort():
    menu = make_menu([(2.0, 1.0, 0)], best_effort=False)
    assert menu.price(3.0) == math.inf
    assert menu.marginal(2.5) == math.inf


def test_marginal_steps():
    menu = make_menu([(2.0, 1.0, 0), (3.0, 2.0, 1)])
    assert menu.marginal(0.0) == 1.0
    assert menu.marginal(1.999) == 1.0
    assert menu.marginal(2.0) == 2.0
    assert menu.marginal(4.999) == 2.0
    assert menu.marginal(5.0) == 2.0  # best-effort extends at last price


def test_segments_must_be_sorted():
    with pytest.raises(ValueError):
        make_menu([(1.0, 3.0, 0), (1.0, 1.0, 1)])


def test_segment_validation():
    path = _path()
    with pytest.raises(ValueError):
        MenuSegment(0.0, 1.0, path, 0)
    with pytest.raises(ValueError):
        MenuSegment(1.0, -1.0, path, 0)


def test_negative_volume_rejected():
    menu = make_menu([(1.0, 1.0, 0)])
    with pytest.raises(ValueError):
        menu.price(-1.0)
    with pytest.raises(ValueError):
        menu.marginal(-0.1)
    with pytest.raises(ValueError):
        menu.guaranteed_prefix(-2.0)


def test_best_response_theorem_5_2():
    menu = make_menu([(2.0, 1.0, 0), (3.0, 2.0, 1)])
    # value below the cheapest price: buy nothing
    assert menu.best_response(0.5, 10.0) == 0.0
    # value covers only the first segment
    assert menu.best_response(1.5, 10.0) == 2.0
    # value covers everything incl. best-effort: buy full demand
    assert menu.best_response(2.5, 10.0) == 10.0
    # demand binds first
    assert menu.best_response(2.5, 1.5) == 1.5
    assert menu.best_response(2.5, 0.0) == 0.0


def test_best_response_no_best_effort_caps_at_guarantee():
    menu = make_menu([(2.0, 1.0, 0)], best_effort=False)
    assert menu.best_response(5.0, 10.0) == 2.0


def test_guaranteed_prefix():
    menu = make_menu([(2.0, 1.0, 0), (3.0, 2.0, 1)])
    prefix = menu.guaranteed_prefix(3.5)
    assert len(prefix) == 2
    assert prefix[0][1] == 2.0
    assert prefix[1][1] == 1.5
    assert sum(v for _, v in prefix) == pytest.approx(3.5)
    # beyond the guarantee: prefix covers only x-bar
    prefix = menu.guaranteed_prefix(99.0)
    assert sum(v for _, v in prefix) == pytest.approx(5.0)


def test_breakpoints():
    menu = make_menu([(2.0, 1.0, 0), (3.0, 2.0, 1)])
    assert menu.breakpoints() == [(2.0, 1.0), (5.0, 2.0)]


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(st.floats(min_value=0.1, max_value=10.0),
                          st.floats(min_value=0.0, max_value=5.0)),
                min_size=1, max_size=6))
def test_menu_convexity_property(raw):
    """p is non-decreasing and convex; lambda is non-decreasing."""
    specs = [(q, p, i) for i, (q, p) in
             enumerate(sorted(raw, key=lambda s: s[1]))]
    menu = make_menu(specs)
    xs = [0.0]
    for q, _, _ in specs:
        xs.append(xs[-1] + q / 2)
        xs.append(xs[-1] + q / 2)
    prices = [menu.price(x) for x in xs]
    marginals = [menu.marginal(x) for x in xs]
    for a, b in zip(prices, prices[1:]):
        assert b >= a - 1e-9
    for a, b in zip(marginals, marginals[1:]):
        assert b >= a - 1e-9
    # convexity: marginal cost of [x, x+h] non-decreasing in x
    h = 0.05
    increments = [menu.price(x + h) - menu.price(x) for x in xs]
    for a, b in zip(increments, increments[1:]):
        assert b >= a - 1e-9


@settings(max_examples=60, deadline=None)
@given(value=st.floats(min_value=0.0, max_value=6.0),
       demand=st.floats(min_value=0.1, max_value=12.0))
def test_best_response_maximises_utility_property(value, demand):
    """The Thm 5.2 choice is utility-optimal over a dense grid."""
    menu = make_menu([(2.0, 1.0, 0), (3.0, 2.0, 1), (1.0, 4.0, 2)])
    chosen = menu.best_response(value, demand)
    best_utility = value * chosen - menu.price(chosen)
    for i in range(101):
        x = demand * i / 100
        utility = value * x - menu.price(x)
        assert best_utility >= utility - 1e-6
