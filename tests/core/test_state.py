"""Tests for the shared network state."""

import numpy as np
import pytest

from repro.core import NetworkState, PretiumConfig
from repro.network import Path, line_network, parallel_paths_network


def make_state(n_steps=10, **config_kwargs):
    topo = parallel_paths_network(10.0, 10.0)
    defaults = dict(window=5, lookback=5, initial_price=1.0)
    defaults.update(config_kwargs)
    return topo, NetworkState(topo, n_steps, PretiumConfig(**defaults))


def test_initial_prices_and_capacity():
    topo, state = make_state()
    assert state.prices.shape == (10, 4)
    assert np.allclose(state.prices, 1.0)
    assert np.allclose(state.capacity, 10.0)
    assert state.n_steps == 10


def test_metered_links_start_with_cost_gradient():
    from repro.network import Topology
    topo = Topology()
    topo.add_link("a", "b", 10.0, metered=True, cost_per_unit=2.0)
    topo.add_link("b", "c", 10.0)
    config = PretiumConfig(window=10, lookback=10, initial_price=1.0,
                           topk_fraction=0.1)
    state = NetworkState(topo, 10, config)
    # levelled-schedule gradient C_e / W = 2/10 on the metered link
    assert np.allclose(state.prices[:, 0], 1.2)
    assert np.allclose(state.prices[:, 1], 1.0)


def test_highpri_headroom_reduces_capacity():
    _, state = make_state(highpri_fraction=0.2)
    assert np.allclose(state.capacity, 8.0)


def test_reserve_and_residual():
    topo, state = make_state()
    path = Path((topo.link_between("S", "M1"), topo.link_between("M1", "T")))
    state.reserve(1, path, 3, 4.0)
    residual = state.residual(3)
    assert residual[path.link_indices()[0]] == 6.0
    assert residual[path.link_indices()[1]] == 6.0
    assert state.residual_on_path(path, 3) == 6.0
    assert state.planned_total(1) == 4.0


def test_reserve_accepts_raw_indices():
    topo, state = make_state()
    state.reserve(2, (0, 1), 0, 3.0)
    assert state.reserved[0, 0] == 3.0
    assert state.reserved[0, 1] == 3.0
    assert state.planned_at(2, 0) == [((0, 1), 3.0)]


def test_reserve_zero_is_noop():
    _, state = make_state()
    state.reserve(1, (0,), 0, 0.0)
    assert state.planned_total(1) == 0.0
    assert 1 not in state.plan


def test_release_future():
    topo, state = make_state()
    state.reserve(1, (0,), 2, 2.0)
    state.reserve(1, (0,), 5, 3.0)
    state.reserve(1, (1,), 7, 1.0)
    state.release_future(1, from_step=5)
    assert state.reserved[2, 0] == 2.0
    assert state.reserved[5, 0] == 0.0
    assert state.reserved[7, 1] == 0.0
    assert state.planned_total(1) == 2.0


def test_release_future_removes_empty_plans():
    _, state = make_state()
    state.reserve(1, (0,), 2, 2.0)
    state.release_future(1, from_step=0)
    assert 1 not in state.plan
    # releasing an unknown rid is a no-op
    state.release_future(99, from_step=0)


def test_fail_link():
    topo, state = make_state()
    state.fail_link("S", "M1", start=4, end=6)
    index = topo.link_between("S", "M1").index
    assert state.capacity[3, index] == 10.0
    assert state.capacity[4, index] < 1e-6
    assert state.capacity[5, index] < 1e-6
    assert state.capacity[6, index] == 10.0


def test_fail_link_default_end():
    topo, state = make_state()
    state.fail_link("S", "M1", start=4)
    index = topo.link_between("S", "M1").index
    assert np.all(state.capacity[4:, index] < 1e-6)


def test_set_highpri_usage():
    topo, state = make_state()
    index = topo.link_between("S", "M1").index
    state.set_highpri_usage(2, index, 7.5)
    assert state.capacity[2, index] == pytest.approx(2.5)
    state.set_highpri_usage(2, index, 50.0)
    assert state.capacity[2, index] == 0.0


def test_price_segments_split_at_threshold():
    _, state = make_state(congestion_threshold=0.8,
                          congestion_multiplier=2.0)
    segments = state.price_segments(0, 0)
    assert len(segments) == 2
    assert segments[0] == pytest.approx((8.0, 1.0))
    assert segments[1] == pytest.approx((2.0, 2.0))


def test_price_segments_after_reservation():
    _, state = make_state()
    state.reserve(1, (0,), 0, 9.0)  # into the congested zone
    segments = state.price_segments(0, 0)
    assert len(segments) == 1
    assert segments[0][0] == pytest.approx(1.0)
    assert segments[0][1] == pytest.approx(2.0)


def test_price_segments_full_link():
    _, state = make_state()
    state.reserve(1, (0,), 0, 10.0)
    assert state.price_segments(0, 0) == []


def test_price_segments_without_adjustment():
    _, state = make_state(short_term_adjustment=False)
    segments = state.price_segments(0, 0)
    assert segments == [(10.0, 1.0)]


def test_price_segments_reserved_override():
    _, state = make_state()
    segments = state.price_segments(0, 0, reserved_override=9.5)
    assert len(segments) == 1
    assert segments[0][0] == pytest.approx(0.5)


def test_set_prices_tiles_forward():
    _, state = make_state(n_steps=10)
    new = np.full((5, 4), 7.0)
    new[2, :] = 9.0
    state.set_prices(5, new)
    assert np.allclose(state.prices[:5], 1.0)      # past untouched
    assert np.allclose(state.prices[5], 7.0)
    assert np.allclose(state.prices[7], 9.0)       # offset 2 in window
    assert state.n_steps == 10


def test_set_prices_applies_floor():
    _, state = make_state(price_floor=0.5)
    state.set_prices(0, np.zeros((5, 4)))
    assert np.allclose(state.prices, 0.5)


def test_set_prices_validation():
    _, state = make_state()
    with pytest.raises(ValueError):
        state.set_prices(0, np.zeros((5, 3)))
    with pytest.raises(ValueError):
        NetworkState(parallel_paths_network(), 0,
                     PretiumConfig(window=5, lookback=5))
