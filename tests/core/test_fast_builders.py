"""Differential tests: COO LP builders vs the reference expression builders.

The batched builders mirror the reference emission order exactly, so the
assembled matrices are identical and HiGHS returns the same optimum.
These tests compare the *user-visible* results — SAM plans, PC duals and
installed prices, offline schedules — between ``lp_builder="coo"`` and
``"expr"`` on randomised scenarios, within the repo-wide equivalence
tolerances (objective 1e-6 relative, duals 1e-6 absolute).
"""

import random

import numpy as np
import pytest

from repro.baselines.base import ScheduleItem, solve_offline_schedule
from repro.core import (ByteRequest, NetworkState, PretiumConfig,
                        PriceComputer, RequestAdmission, ScheduleAdjuster)
from repro.network import small_wan
from repro.traffic import build_workload


def build_contracts(state, ra, rng, n_requests, horizon):
    nodes = list(state.topology.nodes)
    contracts = []
    for rid in range(n_requests):
        src, dst = rng.sample(nodes, 2)
        start = rng.randrange(0, max(1, horizon // 3))
        deadline = min(horizon - 1, start + rng.randrange(1, horizon // 2))
        req = ByteRequest(rid, src, dst, rng.uniform(2.0, 30.0), 0,
                          start, deadline, 1.0)
        menu = ra.quote(req, now=0)
        contract = ra.admit(req, menu, req.demand, 0)
        if contract:
            contracts.append(contract)
    return contracts


def sam_plan(lp_builder, encoding, short_term, now, seed=13):
    rng = random.Random(seed)
    topo = small_wan(seed=2)
    config = PretiumConfig(window=6, lookback=6, topk_encoding=encoding,
                           short_term_adjustment=short_term,
                           lp_builder=lp_builder, quote_path="scan")
    state = NetworkState(topo, 18, config)
    ra = RequestAdmission(state)
    sam = ScheduleAdjuster(state, billing_window=6)
    contracts = build_contracts(state, ra, rng, 10, 18)
    delivered = {c.rid: rng.uniform(0.0, 0.4) * c.chosen for c in contracts}
    realized = np.abs(np.random.default_rng(3).normal(
        2.0, 1.0, (state.n_steps, topo.num_links)))
    return sam.adjust(contracts, delivered, realized, now=now)


@pytest.mark.parametrize("encoding", ["cvar", "sorting"])
@pytest.mark.parametrize("short_term", [True, False])
def test_sam_coo_matches_expression_plan(encoding, short_term):
    expr = sam_plan("expr", encoding, short_term, now=4)
    coo = sam_plan("coo", encoding, short_term, now=4)
    assert len(expr) == len(coo) and len(expr) > 0
    for te, tc in zip(expr, coo):
        assert (te.rid, te.links, te.timestep) == \
            (tc.rid, tc.links, tc.timestep)
        assert tc.volume == pytest.approx(te.volume, abs=1e-6)


def pc_prices(lp_builder, encoding, seed=17):
    rng = random.Random(seed)
    topo = small_wan(seed=3)
    config = PretiumConfig(window=6, lookback=9, topk_encoding=encoding,
                           lp_builder=lp_builder, quote_path="scan")
    state = NetworkState(topo, 24, config)
    ra = RequestAdmission(state)
    pc = PriceComputer(state, billing_window=6)
    contracts = build_contracts(state, ra, rng, 12, 20)
    duals, covered = pc._solve_offline(contracts, 1, 10)
    changed = pc.update(contracts, now=9)
    return duals, covered, changed, state.prices.copy()


@pytest.mark.parametrize("encoding", ["cvar", "sorting"])
def test_pc_coo_matches_expression_duals_and_prices(encoding):
    duals_e, cov_e, changed_e, prices_e = pc_prices("expr", encoding)
    duals_c, cov_c, changed_c, prices_c = pc_prices("coo", encoding)
    assert changed_e and changed_c
    assert np.count_nonzero(duals_e) > 0  # the LP actually priced links
    np.testing.assert_allclose(duals_c, duals_e, atol=1e-6)
    assert np.array_equal(cov_c, cov_e)
    np.testing.assert_allclose(prices_c, prices_e, atol=1e-6)


@pytest.mark.parametrize("objective", ["weighted", "bytes_then_cost"])
def test_offline_schedule_coo_matches_expression(objective):
    topo = small_wan(seed=4)
    workload = build_workload(topo, n_days=1, steps_per_day=8,
                              load_factor=1.5, seed=9)
    items = [ScheduleItem(request=r, weight=r.value, cap=r.demand)
             for r in workload.requests[:400]]
    kwargs = dict(route_count=3, topk_fraction=0.25, include_costs=True,
                  objective=objective)
    expr = solve_offline_schedule(workload, items, builder="expr", **kwargs)
    coo = solve_offline_schedule(workload, items, builder="coo", **kwargs)
    rel = 1e-6 * max(1.0, abs(expr.objective))
    assert coo.objective == pytest.approx(expr.objective, abs=rel)
    np.testing.assert_allclose(coo.loads, expr.loads, atol=1e-6)
    assert coo.delivered.keys() == expr.delivered.keys()
    for rid, volume in expr.delivered.items():
        assert coo.delivered[rid] == pytest.approx(volume, abs=1e-6)
        np.testing.assert_allclose(coo.per_step[rid], expr.per_step[rid],
                                   atol=1e-6)


def test_offline_schedule_rejects_unknown_builder():
    topo = small_wan(seed=4)
    workload = build_workload(topo, n_days=1, steps_per_day=4,
                              load_factor=0.5, seed=1)
    with pytest.raises(ValueError):
        solve_offline_schedule(workload, [], builder="dense")
