"""Differential tests: heap-based RA quote vs the reference scan.

The heap path must reproduce the reference menu *exactly* — same
segments, same volumes, prices, paths, timesteps, in the same order —
for any state, because contracts and settlement are built from the menu.
"""

import random

import numpy as np
import pytest

from repro.core import (ByteRequest, NetworkState, PretiumConfig,
                        RequestAdmission)
from repro.network import parallel_paths_network, small_wan
from repro.telemetry import get_registry


def exact_key(menu):
    return [(s.quantity, s.unit_price, s.path.link_indices(), s.timestep)
            for s in menu.segments]


def make_state(topology, n_steps=12, **config_kwargs):
    defaults = dict(window=6, lookback=6)
    defaults.update(config_kwargs)
    return NetworkState(topology, n_steps, PretiumConfig(**defaults))


def test_heap_quote_matches_scan_simple():
    state = make_state(parallel_paths_network(10.0, 6.0))
    ra = RequestAdmission(state)
    req = ByteRequest(1, "S", "T", 40.0, 0, 0, 5, 1.0)
    heap_menu = ra.quote(req, now=0)
    scan_menu = ra.quote_reference(req, now=0)
    assert exact_key(heap_menu) == exact_key(scan_menu)
    assert heap_menu.segments  # non-trivial menu


@pytest.mark.parametrize("short_term", [True, False])
def test_heap_quote_matches_scan_randomised(short_term):
    rng = random.Random(5)
    topo = small_wan(seed=6)
    state = make_state(topo, n_steps=18, short_term_adjustment=short_term)
    ra = RequestAdmission(state)
    nodes = list(topo.nodes)
    n_segments = 0
    for rid in range(60):
        src, dst = rng.sample(nodes, 2)
        start = rng.randrange(0, 12)
        deadline = min(17, start + rng.randrange(1, 8))
        req = ByteRequest(rid, src, dst, rng.uniform(1.0, 50.0), 0,
                          start, deadline, 1.0)
        heap_menu = ra.quote(req, now=min(start, 11))
        scan_menu = ra.quote_reference(req, now=min(start, 11))
        assert exact_key(heap_menu) == exact_key(scan_menu), f"rid={rid}"
        n_segments += len(heap_menu.segments)
        # Admit some so later quotes see non-trivial reservations.
        if rid % 3 == 0 and heap_menu.segments:
            ra.admit(req, heap_menu, req.demand / 2.0, now=min(start, 11))
    assert n_segments > 40  # the comparison actually exercised segments


def test_heap_quote_price_monotone_and_demand_capped():
    state = make_state(parallel_paths_network(8.0, 8.0))
    ra = RequestAdmission(state)
    req = ByteRequest(7, "S", "T", 30.0, 0, 0, 3, 1.0)
    menu = ra.quote(req, now=0)
    prices = [s.unit_price for s in menu.segments]
    assert prices == sorted(prices)
    assert sum(s.quantity for s in menu.segments) <= req.demand + 1e-9


def test_heap_quote_empty_cases_match_scan():
    state = make_state(parallel_paths_network(8.0, 8.0))
    ra = RequestAdmission(state)
    # Window entirely before `now` has no steps left.
    req = ByteRequest(1, "S", "T", 5.0, 0, 0, 2, 1.0)
    assert exact_key(ra.quote(req, now=11)) == \
        exact_key(ra.quote_reference(req, now=11))
    assert not ra.quote(req, now=11).segments


def test_heap_counters_increment():
    registry = get_registry()
    before = registry.counter("ra.quote.heap_pops").value
    state = make_state(parallel_paths_network(10.0, 6.0))
    ra = RequestAdmission(state)
    ra.quote(ByteRequest(1, "S", "T", 40.0, 0, 0, 5, 1.0), now=0)
    assert registry.counter("ra.quote.heap_pops").value > before


def test_scan_config_uses_reference_path():
    state = make_state(parallel_paths_network(10.0, 6.0),
                       quote_path="scan")
    ra = RequestAdmission(state)
    req = ByteRequest(1, "S", "T", 12.0, 0, 0, 4, 1.0)
    assert exact_key(ra.quote(req, now=0)) == \
        exact_key(ra.quote_reference(req, now=0))
