"""Integration tests for the Pretium controller on small workloads."""

import numpy as np
import pytest

from repro.core import (AllOrNothingUser, ByteRequest, PretiumConfig,
                        PretiumController)
from repro.costs import LinkCostModel
from repro.network import parallel_paths_network, small_wan
from repro.sim import metrics, simulate
from repro.traffic import FixedValues, Workload, build_workload


def tiny_workload(requests=None, n_steps=6, steps_per_day=3):
    topo = parallel_paths_network(10.0, 10.0)
    requests = requests or [
        ByteRequest(0, "S", "T", 8.0, 0, 0, 2, 2.0),
        ByteRequest(1, "S", "T", 5.0, 1, 1, 4, 1.5),
        ByteRequest(2, "S", "T", 3.0, 3, 3, 5, 3.0),
    ]
    return Workload(topo, requests, n_steps=n_steps,
                    steps_per_day=steps_per_day)


def config(**kwargs):
    defaults = dict(window=3, lookback=3, initial_price=0.1,
                    price_floor=1e-3)
    defaults.update(kwargs)
    return PretiumConfig(**defaults)


def test_all_requests_served_when_capacity_ample():
    wl = tiny_workload()
    result = simulate(PretiumController(config()), wl)
    for req in wl.requests:
        assert result.delivered[req.rid] == pytest.approx(req.demand,
                                                          rel=1e-6)
    assert metrics.completion_fraction(result) == 1.0


def test_guarantees_met_for_admitted_requests():
    topo = small_wan(seed=0)
    wl = build_workload(topo, n_days=1, steps_per_day=8, load_factor=2.0,
                        seed=1)
    ctl = PretiumController(config(window=8, lookback=8))
    result = simulate(ctl, wl)
    for contract in ctl.contracts:
        assert result.delivered.get(contract.rid, 0.0) >= \
            contract.guaranteed - 1e-5


def test_capacity_never_violated():
    topo = small_wan(seed=0)
    wl = build_workload(topo, n_days=1, steps_per_day=8, load_factor=4.0,
                        seed=2)
    ctl = PretiumController(config(window=8, lookback=8))
    result = simulate(ctl, wl)  # engine raises on violation
    assert np.all(result.loads <= ctl.state.capacity + 1e-5)


def test_payments_match_contract_settlement():
    wl = tiny_workload()
    ctl = PretiumController(config())
    result = simulate(ctl, wl)
    for contract in ctl.contracts:
        expected = contract.payment_for(result.delivered[contract.rid])
        assert result.payments[contract.rid] == pytest.approx(expected)


def test_welfare_identity():
    """welfare == profit + user surplus (accounting consistency)."""
    topo = small_wan(seed=0)
    wl = build_workload(topo, n_days=1, steps_per_day=8, load_factor=2.0,
                        seed=3)
    result = simulate(PretiumController(config(window=8, lookback=8)), wl)
    cm = LinkCostModel(topo, billing_window=8)
    w = metrics.welfare(result, cm)
    p = metrics.profit(result, cm)
    s = metrics.user_surplus(result)
    assert w == pytest.approx(p + s, rel=1e-9, abs=1e-6)


def test_default_config_derived_from_workload():
    wl = tiny_workload(steps_per_day=3)
    ctl = PretiumController()
    simulate(ctl, wl)
    assert ctl.config.window == 3
    assert ctl.config.lookback == 4


def test_low_value_requests_declined_at_high_prices():
    wl = tiny_workload(requests=[
        ByteRequest(0, "S", "T", 5.0, 0, 0, 2, 0.05),
    ])
    ctl = PretiumController(config(initial_price=1.0))
    result = simulate(ctl, wl)
    # 2-hop path at price 1.0/link = 2.0/unit > value 0.05
    assert result.delivered.get(0, 0.0) == 0.0
    assert result.payments.get(0, 0.0) == 0.0


def test_nosam_executes_preliminary_plan():
    wl = tiny_workload()
    ctl = PretiumController(config(sam_enabled=False))
    result = simulate(ctl, wl)
    for req in wl.requests:
        assert result.delivered[req.rid] == pytest.approx(req.demand,
                                                          rel=1e-6)


def test_nomenu_user_is_all_or_nothing():
    ctl = PretiumController(config(menu_enabled=False))
    ctl.begin(tiny_workload())
    assert isinstance(ctl.user, AllOrNothingUser)


def test_price_updates_happen_each_window():
    topo = small_wan(seed=0)
    wl = build_workload(topo, n_days=2, steps_per_day=6, load_factor=1.0,
                        seed=4)
    ctl = PretiumController(config(window=6, lookback=6))
    simulate(ctl, wl)
    # windows at t=6 (and possibly none at t=0); at least one update
    assert ctl.price_updates >= 1


def test_price_series_accessor():
    wl = tiny_workload()
    ctl = PretiumController(config())
    simulate(ctl, wl)
    series = ctl.price_series("S", "M1")
    assert series.shape == (wl.n_steps,)
    assert np.all(series >= 0)


def test_fault_recovery_reroutes():
    """A failed link mid-run: SAM shifts traffic to the other path."""
    topo = parallel_paths_network(10.0, 10.0)
    requests = [ByteRequest(0, "S", "T", 18.0, 0, 0, 3, 5.0)]
    wl = Workload(topo, requests, n_steps=4, steps_per_day=4)
    ctl = PretiumController(config(window=4, lookback=4))

    ctl.begin(wl)
    loads = np.zeros((4, topo.num_links))
    delivered = {}
    ctl.window_start(0)
    ctl.arrival(requests[0], 0)
    # break the top path for the rest of the horizon
    ctl.state.fail_link("S", "M1", start=1)
    for t in range(4):
        ctl.window_start(t)
        txs = ctl.step(t, delivered, loads)
        for tx in txs:
            for index in tx.links:
                loads[t, index] += tx.volume
            delivered[tx.rid] = delivered.get(tx.rid, 0.0) + tx.volume
    # 18 units still fit: 10 via step 0 (both paths), rest via bottom path
    assert delivered[0] == pytest.approx(18.0, rel=1e-6)
    top_index = topo.link_between("S", "M1").index
    assert loads[1:, top_index].max() <= 1e-6
