"""Property-based tests of the admission interface (Theorem 5.1's levers).

These exercise the *generated* menus on randomised network states, not
hand-built ones: convexity, deadline monotonicity, and the no-benefit-
from-splitting property that underpin the truthfulness argument.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (ByteRequest, NetworkState, PretiumConfig,
                        RequestAdmission)
from repro.network import parallel_paths_network, wan_topology


def build_ra(seed: int, n_steps: int = 8):
    """A small WAN with randomised prices and partial reservations."""
    rng = np.random.default_rng(seed)
    topology = wan_topology(n_nodes=8, n_regions=2, seed=seed)
    config = PretiumConfig(window=n_steps, lookback=n_steps,
                           initial_price=0.1)
    state = NetworkState(topology, n_steps, config)
    state.prices[:] = rng.uniform(0.01, 2.0,
                                  size=state.prices.shape)
    # Randomly pre-reserve some capacity.
    for _ in range(10):
        link = int(rng.integers(0, topology.num_links))
        t = int(rng.integers(0, n_steps))
        state.reserved[t, link] = float(
            rng.uniform(0, state.capacity[t, link]))
    return topology, state, RequestAdmission(state)


def random_pair(topology, rng):
    nodes = topology.nodes
    i, j = rng.choice(len(nodes), size=2, replace=False)
    return nodes[int(i)], nodes[int(j)]


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10 ** 6))
def test_generated_menus_are_convex(seed):
    rng = np.random.default_rng(seed)
    topology, state, ra = build_ra(seed)
    src, dst = random_pair(topology, rng)
    request = ByteRequest(1, src, dst, 200.0, 0, 0, 5, 1.0)
    menu = ra.quote(request, now=0)
    prices = [segment.unit_price for segment in menu.segments]
    assert prices == sorted(prices)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10 ** 6),
       d1=st.integers(min_value=0, max_value=3),
       d2=st.integers(min_value=4, max_value=7))
def test_longer_deadline_pointwise_cheaper(seed, d1, d2):
    """p_loose(x) <= p_tight(x) for all x — the Theorem 5.1 lever."""
    rng = np.random.default_rng(seed)
    topology, state, ra = build_ra(seed)
    src, dst = random_pair(topology, rng)
    tight = ByteRequest(1, src, dst, 300.0, 0, 0, d1, 1.0)
    loose = ByteRequest(2, src, dst, 300.0, 0, 0, d2, 1.0)
    menu_tight = ra.quote(tight, now=0)
    menu_loose = ra.quote(loose, now=0)
    assert menu_loose.max_guaranteed >= menu_tight.max_guaranteed - 1e-9
    for x in np.linspace(0.0, menu_tight.max_guaranteed, 7):
        assert menu_loose.price(float(x)) <= \
            menu_tight.price(float(x)) + 1e-6


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10 ** 6),
       fraction=st.floats(min_value=0.2, max_value=0.8))
def test_splitting_never_cheaper(seed, fraction):
    """Submitting two sub-requests costs at least the single request.

    The second half is quoted *after* the first is admitted, so it faces
    weakly higher prices (the Theorem 5.1 multiple-requests argument).
    """
    rng = np.random.default_rng(seed)
    topology, state, ra = build_ra(seed)
    src, dst = random_pair(topology, rng)
    demand = 60.0
    whole = ByteRequest(1, src, dst, demand, 0, 0, 5, 10.0)
    menu_whole = ra.quote(whole, now=0)
    buyable = min(demand, menu_whole.max_guaranteed)
    if buyable < 1e-6:
        return
    single_price = menu_whole.price(buyable)

    first = ByteRequest(2, src, dst, buyable * fraction, 0, 0, 5, 10.0)
    menu_first = ra.quote(first, now=0)
    bought_first = min(first.demand, menu_first.max_guaranteed)
    ra.admit(first, menu_first, bought_first, now=0)
    second = ByteRequest(3, src, dst, buyable - bought_first, 0, 0, 5, 10.0)
    menu_second = ra.quote(second, now=0)
    bought_second = min(second.demand, menu_second.max_guaranteed)
    split_price = menu_first.price(bought_first) + \
        menu_second.price(bought_second)
    served_split = bought_first + bought_second
    # Compare at equal served volume: the split never serves more volume
    # for less money.
    assert served_split <= buyable + 1e-6
    assert split_price >= menu_whole.price(served_split) - 1e-6


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10 ** 6))
def test_guarantee_bound_respects_capacity(seed):
    """x-bar never exceeds what the window's bottleneck allows."""
    rng = np.random.default_rng(seed)
    topology, state, ra = build_ra(seed)
    src, dst = random_pair(topology, rng)
    request = ByteRequest(1, src, dst, 10 ** 6, 0, 0, 7, 1.0)
    menu = ra.quote(request, now=0)
    # upper bound: total residual out-capacity of the source
    out_capacity = sum(
        max(0.0, state.capacity[t, link.index] - state.reserved[t, link.index])
        for link in topology.out_links(src) for t in range(8))
    assert menu.max_guaranteed <= out_capacity + 1e-6


def test_menu_segments_carry_reservable_paths():
    topology = parallel_paths_network(10.0, 10.0)
    config = PretiumConfig(window=4, lookback=4)
    state = NetworkState(topology, 4, config)
    ra = RequestAdmission(state)
    request = ByteRequest(1, "S", "T", 100.0, 0, 0, 3, 5.0)
    menu = ra.quote(request, now=0)
    for segment in menu.segments:
        assert segment.path.src == "S"
        assert segment.path.dst == "T"
        assert 0 <= segment.timestep <= 3
