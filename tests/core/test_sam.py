"""Tests for the schedule adjustment module (§4.2)."""

import numpy as np
import pytest

from repro.core import (ByteRequest, NetworkState, PretiumConfig,
                        RequestAdmission, ScheduleAdjuster, install_plan,
                        transmissions_now)
from repro.network import Topology, parallel_paths_network


def setup(topology=None, n_steps=6, billing_window=6, **config_kwargs):
    topology = topology or parallel_paths_network(10.0, 10.0)
    defaults = dict(window=3, lookback=3, initial_price=1.0,
                    short_term_adjustment=False)
    defaults.update(config_kwargs)
    state = NetworkState(topology, n_steps, PretiumConfig(**defaults))
    return (topology, state, RequestAdmission(state),
            ScheduleAdjuster(state, billing_window))


def admit(ra, req, chosen=None, now=0):
    menu = ra.quote(req, now=now)
    return ra.admit(req, menu, chosen if chosen is not None
                    else req.demand, now)


def loads_for(state):
    return np.zeros((state.n_steps, state.topology.num_links))


def test_empty_contracts_no_plan():
    _, state, _, sam = setup()
    assert sam.adjust([], {}, loads_for(state), 0) == []


def test_plan_covers_guarantee():
    _, state, ra, sam = setup()
    req = ByteRequest(1, "S", "T", 12.0, 0, 0, 2, 5.0)
    contract = admit(ra, req)
    plan = sam.adjust([contract], {}, loads_for(state), 0)
    total = sum(tx.volume for tx in plan)
    assert total == pytest.approx(12.0)
    assert all(0 <= tx.timestep <= 2 for tx in plan)


def test_plan_respects_delivered_progress():
    _, state, ra, sam = setup()
    req = ByteRequest(1, "S", "T", 12.0, 0, 0, 2, 5.0)
    contract = admit(ra, req)
    plan = sam.adjust([contract], {1: 8.0}, loads_for(state), 1)
    total = sum(tx.volume for tx in plan)
    assert total == pytest.approx(4.0)
    assert all(tx.timestep >= 1 for tx in plan)


def test_completed_requests_excluded():
    _, state, ra, sam = setup()
    req = ByteRequest(1, "S", "T", 12.0, 0, 0, 2, 5.0)
    contract = admit(ra, req)
    assert sam.adjust([contract], {1: 12.0}, loads_for(state), 1) == []


def test_expired_requests_excluded():
    _, state, ra, sam = setup()
    req = ByteRequest(1, "S", "T", 12.0, 0, 0, 2, 5.0)
    contract = admit(ra, req)
    assert sam.adjust([contract], {}, loads_for(state), 3) == []


def test_capacity_respected():
    _, state, ra, sam = setup()
    contracts = []
    for rid in range(4):
        req = ByteRequest(rid, "S", "T", 15.0, 0, 0, 2, 5.0)
        contracts.append(admit(ra, req, chosen=15.0))
    plan = [tx for c in [sam.adjust(contracts, {}, loads_for(state), 0)]
            for tx in c]
    loads = np.zeros((state.n_steps, state.topology.num_links))
    for tx in plan:
        for index in tx.links:
            loads[tx.timestep, index] += tx.volume
    assert np.all(loads <= state.capacity + 1e-6)


def test_low_value_best_effort_dropped_when_costly():
    """SAM declines volume whose marginal value is below its cost."""
    topo = Topology()
    topo.add_link("a", "b", 10.0, metered=True, cost_per_unit=50.0)
    _, state, ra, sam = setup(topology=topo, billing_window=6)
    req = ByteRequest(1, "a", "b", 6.0, 0, 0, 5, 0.5)
    menu = ra.quote(req, now=0)
    contract = ra.admit(req, menu, 6.0, now=0)
    # zero out the guarantee so only best-effort economics matter
    contract.guaranteed = 0.0
    contract.marginal_price = 0.5
    plan = sam.adjust([contract], {}, loads_for(state), 0)
    # top-10% of 6 samples -> k=1; spreading 6 units over 6 steps costs
    # 50 per peak unit; value is 0.5/unit -> nothing is worth sending.
    assert sum(tx.volume for tx in plan) == pytest.approx(0.0, abs=1e-6)


def test_metered_cost_spreads_load_across_steps():
    """With a top-k cost on the only link, SAM flattens the schedule."""
    topo = Topology()
    topo.add_link("a", "b", 10.0, metered=True, cost_per_unit=1.0)
    _, state, ra, sam = setup(topology=topo, n_steps=10, billing_window=10)
    req = ByteRequest(1, "a", "b", 10.0, 0, 0, 9, 5.0)
    contract = admit(ra, req)
    plan = sam.adjust([contract], {}, loads_for(state), 0)
    per_step = np.zeros(10)
    for tx in plan:
        per_step[tx.timestep] += tx.volume
    # k = 1: cost charges the peak; optimal plan balances to 1.0/step
    assert per_step.max() == pytest.approx(1.0, abs=1e-6)


def test_fault_triggers_best_effort_fallback():
    """When a fault makes guarantees infeasible, SAM still returns a plan."""
    _, state, ra, sam = setup(n_steps=3)
    req = ByteRequest(1, "S", "T", 60.0, 0, 0, 2, 5.0)
    contract = admit(ra, req, chosen=60.0)
    assert contract.guaranteed == pytest.approx(60.0)
    # both paths die for the remaining steps
    state.fail_link("S", "M1", start=1)
    state.fail_link("S", "M2", start=1)
    plan = sam.adjust([contract], {1: 10.0}, loads_for(state), 1)
    assert sum(tx.volume for tx in plan) <= 1e-6


def test_transmissions_now_filters():
    from repro.core import Transmission
    plan = [Transmission(1, (0,), 0, 1.0), Transmission(1, (0,), 1, 2.0)]
    assert [tx.volume for tx in transmissions_now(plan, 0)] == [1.0]
    assert [tx.volume for tx in transmissions_now(plan, 1)] == [2.0]


def test_install_plan_rewrites_future_reservations():
    from repro.core import Transmission
    _, state, ra, _ = setup()
    req = ByteRequest(1, "S", "T", 12.0, 0, 0, 2, 5.0)
    admit(ra, req)
    before = state.planned_total(1)
    assert before == pytest.approx(12.0)
    new_plan = [Transmission(1, (0, 1), 1, 5.0),
                Transmission(1, (2, 3), 2, 7.0)]
    install_plan(state, new_plan, now=0, active_rids={1})
    # step-0 reservations survive; future rewritten to 12 across 2 steps
    planned_future = sum(v for (links, t), v in state.plan[1].items()
                         if t >= 1)
    assert planned_future == pytest.approx(12.0)


def test_install_plan_releases_dropped_requests():
    _, state, ra, _ = setup()
    req = ByteRequest(1, "S", "T", 12.0, 0, 0, 2, 5.0)
    admit(ra, req)
    install_plan(state, [], now=0, active_rids={1})
    planned_future = sum(v for (links, t), v in
                         state.plan.get(1, {}).items() if t >= 1)
    assert planned_future == 0.0


def test_billing_window_validation():
    topo = parallel_paths_network()
    state = NetworkState(topo, 4, PretiumConfig(window=2, lookback=2))
    with pytest.raises(ValueError):
        ScheduleAdjuster(state, 0)


def test_sorting_encoding_gives_same_plan_value():
    """CVaR and sorting-network SAMs agree on the objective."""
    results = {}
    for encoding in ("cvar", "sorting"):
        topo = Topology()
        topo.add_link("a", "b", 10.0, metered=True, cost_per_unit=1.0)
        _, state, ra, sam = setup(topology=topo, n_steps=5, billing_window=5,
                                  topk_encoding=encoding)
        req = ByteRequest(1, "a", "b", 10.0, 0, 0, 4, 5.0)
        contract = admit(ra, req)
        plan = sam.adjust([contract], {}, loads_for(state), 0)
        per_step = np.zeros(5)
        for tx in plan:
            per_step[tx.timestep] += tx.volume
        results[encoding] = per_step.max()
    assert results["cvar"] == pytest.approx(results["sorting"], abs=1e-6)
