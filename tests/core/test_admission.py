"""Tests for the request admission interface (§4.1)."""

import numpy as np
import pytest

from repro.core import (ByteRequest, NetworkState, PretiumConfig,
                        RequestAdmission)
from repro.network import Topology, line_network, parallel_paths_network


def make_ra(topology=None, n_steps=6, **config_kwargs):
    topology = topology or parallel_paths_network(10.0, 10.0)
    defaults = dict(window=3, lookback=3, initial_price=1.0,
                    short_term_adjustment=False)
    defaults.update(config_kwargs)
    state = NetworkState(topology, n_steps, PretiumConfig(**defaults))
    return topology, state, RequestAdmission(state)


def request(demand=5.0, start=0, deadline=2, value=10.0, rid=1,
            src="S", dst="T", arrival=None):
    return ByteRequest(rid, src, dst, demand, arrival=start if arrival is None
                       else arrival, start=start, deadline=deadline,
                       value=value)


def test_menu_covers_demand_when_capacity_ample():
    _, _, ra = make_ra()
    menu = ra.quote(request(demand=5.0), now=0)
    assert menu.max_guaranteed == pytest.approx(5.0)
    # 2-hop path at unit link price -> 2.0 per unit
    assert menu.price(5.0) == pytest.approx(10.0)


def test_menu_stops_at_demand():
    _, _, ra = make_ra()
    menu = ra.quote(request(demand=3.0), now=0)
    assert menu.max_guaranteed == pytest.approx(3.0)


def test_menu_price_reflects_path_length():
    topo = line_network(3, capacity=10.0)
    _, _, ra = make_ra(topology=topo)
    one_hop = ra.quote(request(src="n0", dst="n1", demand=1.0), now=0)
    two_hop = ra.quote(request(src="n0", dst="n2", demand=1.0), now=0)
    assert one_hop.price(1.0) == pytest.approx(1.0)
    assert two_hop.price(1.0) == pytest.approx(2.0)


def test_menu_uses_cheapest_timestep_first():
    topo, state, ra = make_ra()
    # make timestep 1 cheaper than timestep 0
    state.prices[0, :] = 3.0
    state.prices[1, :] = 1.0
    menu = ra.quote(request(demand=5.0, start=0, deadline=1), now=0)
    assert menu.segments[0].timestep == 1
    assert menu.segments[0].unit_price == pytest.approx(2.0)


def test_longer_deadline_is_pointwise_cheaper():
    """Figure 4: a shorter deadline leads to (weakly) higher prices."""
    topo, state, ra = make_ra()
    state.prices[0, :] = 5.0
    state.prices[1, :] = 2.0
    state.prices[2, :] = 1.0
    tight = ra.quote(request(demand=30.0, start=0, deadline=0), now=0)
    loose = ra.quote(request(demand=30.0, start=0, deadline=2, rid=2), now=0)
    for x in (1.0, 5.0, 10.0):
        assert loose.price(x) <= tight.price(x) + 1e-9
    assert loose.max_guaranteed >= tight.max_guaranteed


def test_menu_exhausts_capacity():
    _, _, ra = make_ra()
    # 2 paths x 3 steps x bottleneck 10 = 60 units max
    menu = ra.quote(request(demand=100.0, start=0, deadline=2), now=0)
    assert menu.max_guaranteed == pytest.approx(60.0)


def test_menu_empty_when_no_steps_left():
    _, _, ra = make_ra()
    menu = ra.quote(request(start=0, deadline=1), now=4)
    assert menu.is_empty


def test_menu_starts_at_now_not_start():
    topo, state, ra = make_ra()
    state.prices[0, :] = 0.1  # cheap but in the past at quote time
    menu = ra.quote(request(start=0, deadline=2, demand=5.0), now=1)
    assert all(segment.timestep >= 1 for segment in menu.segments)


def test_menu_respects_existing_reservations():
    topo, state, ra = make_ra()
    for t in range(3):
        state.reserve(99, (0,), t, 10.0)  # fill S->M1 entirely
    menu = ra.quote(request(demand=100.0, start=0, deadline=2), now=0)
    # only the bottom path remains: 3 steps x 10
    assert menu.max_guaranteed == pytest.approx(30.0)


def test_congestion_segments_raise_menu_prices():
    _, state, ra = make_ra(short_term_adjustment=True,
                           congestion_threshold=0.8,
                           congestion_multiplier=2.0)
    menu = ra.quote(request(demand=20.0, start=0, deadline=0), now=0)
    # both 2-hop paths: 8 cheap units at 2.0, then 2 congested at 4.0 each
    assert menu.price(16.0) == pytest.approx(32.0)
    assert menu.price(20.0) == pytest.approx(32.0 + 4 * 4.0)


def test_admit_reserves_preliminary_schedule():
    topo, state, ra = make_ra()
    req = request(demand=5.0)
    menu = ra.quote(req, now=0)
    contract = ra.admit(req, menu, chosen=5.0, now=0)
    assert contract is not None
    assert contract.guaranteed == pytest.approx(5.0)
    assert state.planned_total(req.rid) == pytest.approx(5.0)
    # reservations consume residual capacity
    total_reserved = state.reserved.sum()
    assert total_reserved == pytest.approx(10.0)  # 5 units x 2 links


def test_admit_declined():
    _, state, ra = make_ra()
    req = request()
    menu = ra.quote(req, now=0)
    assert ra.admit(req, menu, chosen=0.0, now=0) is None
    assert state.planned_total(req.rid) == 0.0


def test_admit_rejects_overdemand():
    _, _, ra = make_ra()
    req = request(demand=5.0)
    menu = ra.quote(req, now=0)
    with pytest.raises(ValueError):
        ra.admit(req, menu, chosen=6.0, now=0)


def test_admit_best_effort_beyond_guarantee():
    _, state, ra = make_ra()
    req = request(demand=100.0, start=0, deadline=2)
    menu = ra.quote(req, now=0)
    assert menu.max_guaranteed == pytest.approx(60.0)
    contract = ra.admit(req, menu, chosen=80.0, now=0)
    assert contract.guaranteed == pytest.approx(60.0)
    assert contract.best_effort_volume == pytest.approx(20.0)
    # only the guarantee is reserved
    assert state.planned_total(req.rid) == pytest.approx(60.0)


def test_contract_payment_for():
    _, _, ra = make_ra()
    req = request(demand=5.0)
    menu = ra.quote(req, now=0)
    contract = ra.admit(req, menu, chosen=5.0, now=0)
    assert contract.payment_for(5.0) == pytest.approx(menu.price(5.0))
    assert contract.payment_for(2.5) == pytest.approx(menu.price(2.5))
    assert contract.payment_for(0.0) == 0.0
    # delivery beyond chosen is never billed
    assert contract.payment_for(50.0) == pytest.approx(menu.price(5.0))


def test_contract_payment_includes_best_effort():
    _, _, ra = make_ra()
    req = request(demand=100.0, start=0, deadline=2)
    menu = ra.quote(req, now=0)
    contract = ra.admit(req, menu, chosen=80.0, now=0)
    base = menu.price(60.0)
    assert contract.payment_for(70.0) == pytest.approx(
        base + 10.0 * menu.best_effort_price)


def test_sequential_admissions_raise_prices_via_congestion():
    """Admitting traffic pushes later arrivals into pricier segments."""
    _, state, ra = make_ra(short_term_adjustment=True)
    first = request(demand=16.0, start=0, deadline=0, rid=1)
    menu1 = ra.quote(first, now=0)
    ra.admit(first, menu1, chosen=16.0, now=0)
    second = request(demand=4.0, start=0, deadline=0, rid=2)
    menu2 = ra.quote(second, now=0)
    # cheap segments are gone; everything quotes at the doubled price
    assert menu2.segments[0].unit_price == pytest.approx(4.0)
