"""Tests for the scavenger (best-effort) request class (§4.4)."""

import numpy as np
import pytest

from repro.core import (ByteRequest, Contract, PretiumConfig,
                        PretiumController)
from repro.network import Topology, parallel_paths_network
from repro.sim import simulate
from repro.traffic import Workload


def config(**kwargs):
    defaults = dict(window=4, lookback=4, initial_price=0.05)
    defaults.update(kwargs)
    return PretiumConfig(**defaults)


def test_scavenger_contract_shape():
    req = ByteRequest(1, "a", "b", 10.0, 0, 0, 3, 0.5, scavenger=True)
    contract = Contract.scavenger(req, named_price=0.5, now=0)
    assert contract.guaranteed == 0.0
    assert contract.chosen == 10.0
    assert contract.best_effort_volume == 10.0
    assert contract.marginal_price == 0.5
    assert contract.payment_for(4.0) == pytest.approx(2.0)
    assert contract.payment_for(0.0) == 0.0
    assert contract.payment_for(99.0) == pytest.approx(5.0)  # capped


def test_scavenger_negative_price_rejected():
    req = ByteRequest(1, "a", "b", 10.0, 0, 0, 3, 0.5, scavenger=True)
    with pytest.raises(ValueError):
        Contract.scavenger(req, named_price=-1.0, now=0)


def test_scavenger_served_from_leftover_capacity():
    topo = parallel_paths_network(10.0, 10.0)
    requests = [
        ByteRequest(0, "S", "T", 15.0, 0, 0, 1, 2.0),
        ByteRequest(1, "S", "T", 20.0, 0, 0, 1, 0.3, scavenger=True),
    ]
    wl = Workload(topo, requests, n_steps=2, steps_per_day=2)
    ctl = PretiumController(config(window=2, lookback=2))
    result = simulate(ctl, wl)
    # guaranteed request is fully served; scavenger picks up the rest
    assert result.delivered[0] == pytest.approx(15.0)
    assert result.delivered.get(1, 0.0) > 0
    # 40 total capacity over 2 steps; both fit
    assert result.delivered[1] == pytest.approx(20.0)
    assert result.payments[1] == pytest.approx(0.3 * 20.0)


def test_scavenger_never_displaces_guarantees():
    topo = parallel_paths_network(5.0, 5.0)
    requests = [
        ByteRequest(0, "S", "T", 20.0, 0, 0, 1, 2.0),
        ByteRequest(1, "S", "T", 50.0, 0, 0, 1, 100.0, scavenger=True),
    ]
    wl = Workload(topo, requests, n_steps=2, steps_per_day=2)
    ctl = PretiumController(config(window=2, lookback=2))
    result = simulate(ctl, wl)
    # capacity = 20 total; the guaranteed contract takes it all even
    # though the scavenger names a huge price (guarantees are hard).
    assert result.delivered[0] == pytest.approx(20.0)
    assert result.delivered.get(1, 0.0) == pytest.approx(0.0, abs=1e-6)


def test_scavenger_skipped_when_price_below_cost():
    topo = Topology()
    topo.add_link("a", "b", 10.0, metered=True, cost_per_unit=50.0)
    requests = [
        ByteRequest(0, "a", "b", 10.0, 0, 0, 3, 0.1, scavenger=True),
    ]
    wl = Workload(topo, requests, n_steps=4, steps_per_day=4)
    ctl = PretiumController(config())
    result = simulate(ctl, wl)
    # named price 0.1 never covers C/k = 50 -> nothing sent, nothing paid
    assert result.delivered.get(0, 0.0) == pytest.approx(0.0, abs=1e-6)
    assert result.payments.get(0, 0.0) == pytest.approx(0.0, abs=1e-6)


def test_hybrid_guarantee_plus_scavenger():
    """§4.4 hybrid: a guarantee for the floor, a scavenger for upside."""
    topo = parallel_paths_network(10.0, 10.0)
    requests = [
        ByteRequest(0, "S", "T", 10.0, 0, 0, 1, 2.0),                 # firm
        ByteRequest(1, "S", "T", 25.0, 0, 0, 1, 0.2, scavenger=True),  # bulk
    ]
    wl = Workload(topo, requests, n_steps=2, steps_per_day=2)
    ctl = PretiumController(config(window=2, lookback=2))
    result = simulate(ctl, wl)
    assert result.delivered[0] == pytest.approx(10.0)
    # leftover = 40 - 10 = 30 >= 25
    assert result.delivered[1] == pytest.approx(25.0)


def test_scavenger_not_reserved():
    topo = parallel_paths_network(10.0, 10.0)
    wl = Workload(topo, [ByteRequest(0, "S", "T", 10.0, 0, 0, 1, 0.5,
                                     scavenger=True)],
                  n_steps=2, steps_per_day=2)
    ctl = PretiumController(config(window=2, lookback=2))
    ctl.begin(wl)
    ctl.arrival(wl.requests[0], 0)
    # no preliminary reservation is made for scavenger traffic
    assert np.all(ctl.state.reserved == 0.0)
