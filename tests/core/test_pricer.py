"""Tests for the price computer (§4.3): duals, gradients, carry-over."""

import numpy as np
import pytest

from repro.core import (ByteRequest, NetworkState, PretiumConfig,
                        PriceComputer, RequestAdmission)
from repro.network import Topology, line_network, parallel_paths_network


def setup(topology=None, n_steps=8, window=4, **config_kwargs):
    topology = topology or line_network(2, capacity=10.0)
    defaults = dict(window=window, lookback=window, initial_price=1.0,
                    short_term_adjustment=False, price_floor=1e-3)
    defaults.update(config_kwargs)
    state = NetworkState(topology, n_steps, PretiumConfig(**defaults))
    return (topology, state, RequestAdmission(state),
            PriceComputer(state, billing_window=window))


def admit(ra, req, now=None):
    now = req.arrival if now is None else now
    menu = ra.quote(req, now=now)
    return ra.admit(req, menu, req.demand, now)


def test_no_update_before_first_window():
    _, state, ra, pc = setup()
    assert pc.update([], 0) is False
    assert np.allclose(state.prices, 1.0)


def test_no_update_without_history():
    _, state, ra, pc = setup()
    assert pc.update([], 4) is False


def test_uncongested_prices_fall_to_floor():
    """With ample capacity the capacity duals are zero, so the new prices
    hit the floor — the self-correcting downward direction."""
    topo, state, ra, pc = setup()
    req = ByteRequest(1, "n0", "n1", 2.0, 0, 0, 3, 5.0)
    contract = admit(ra, req)
    assert pc.update([contract], 4) is True
    assert np.allclose(state.prices[4:], 1e-3)
    # past prices untouched
    assert np.allclose(state.prices[:4], 1.0)


def test_congested_link_priced_up():
    """Excess demand on a saturated link drives a positive dual price."""
    topo, state, ra, pc = setup()
    contracts = []
    # 3 contracts of 40 each within a 4-step window: capacity is
    # 10/step = 40 total; marginal prices differ, the dual should rise to
    # choke off the lowest-lambda contract.
    for rid, lam in ((1, 1.0), (2, 2.0), (3, 3.0)):
        req = ByteRequest(rid, "n0", "n1", 40.0, 0, 0, 3, lam)
        menu = ra.quote(req, now=0)
        contract = ra.admit(req, menu, 40.0, now=0)
        contract.marginal_price = lam
        contracts.append(contract)
    assert pc.update(contracts, 4) is True
    # the competitive price equals the marginal displaced value (~2.0)
    assert np.all(state.prices[4:, 0] >= 1.0)


def test_metered_gradient_added():
    """On a metered link the window's cost gradients sum to ~C_e.

    With k=1, raising the load on every step of the window by one unit
    raises the billed peak by one unit, i.e. costs ``C_e``; the LP duals
    distribute that gradient across the steps of the window.
    """
    topo = Topology()
    topo.add_link("a", "b", 10.0, metered=True, cost_per_unit=4.0)
    _, state, ra, pc = setup(topology=topo, window=4)
    req = ByteRequest(1, "a", "b", 4.0, 0, 0, 3, 5.0)
    contract = admit(ra, req)
    assert pc.update([contract], 4) is True
    window_prices = state.prices[4:8, 0]
    assert window_prices.sum() >= 4.0 - 1e-6
    assert window_prices.max() <= 4.0 + 1e-6


def test_prices_carried_over_to_later_windows():
    topo, state, ra, pc = setup(n_steps=12, window=4)
    req = ByteRequest(1, "n0", "n1", 2.0, 0, 0, 3, 5.0)
    contract = admit(ra, req)
    pc.update([contract], 4)
    assert np.allclose(state.prices[4:8], state.prices[8:12])


def test_lookback_longer_than_window():
    topo, state, ra, pc = setup(n_steps=12, window=4, lookback=8)
    contracts = [admit(ra, ByteRequest(1, "n0", "n1", 2.0, 0, 0, 3, 5.0))]
    contracts.append(admit(ra, ByteRequest(2, "n0", "n1", 2.0, 4, 4, 7, 5.0)))
    assert pc.update(contracts, 8) is True


def test_update_ignores_unrelated_contracts():
    """Contracts entirely outside the lookback are not considered."""
    topo, state, ra, pc = setup(n_steps=12, window=4, lookback=4)
    future = ByteRequest(1, "n0", "n1", 2.0, 8, 8, 11, 5.0)
    menu = ra.quote(future, now=8)
    contract = ra.admit(future, menu, 2.0, now=8)
    # at t=4 the lookback is [0,4); the future contract is irrelevant
    assert pc.update([contract], 4) is False


def test_self_correcting_loop_raises_congested_price():
    """End-to-end §4.3 behaviour: when purchased volume (guarantees plus
    best-effort) exceeds hindsight capacity, the dual price turns positive
    — equal to the marginal displaced value."""
    def run(demand):
        topo, state, ra, pc = setup()
        contracts = []
        for rid, lam in ((1, 2.0), (2, 3.0)):
            req = ByteRequest(rid, "n0", "n1", demand, 0, 0, 3, 5.0)
            menu = ra.quote(req, now=0)
            chosen = menu.best_response(5.0, demand)
            contract = ra.admit(req, menu, chosen, now=0)
            if contract:
                contract.marginal_price = lam
                contracts.append(contract)
        pc.update(contracts, 4)
        return float(state.prices[4, 0])

    congested = run(demand=30.0)   # 60 purchased vs 40 capacity
    light = run(demand=1.0)
    assert congested > light
    # the displaced marginal contract has lambda = 2.0
    assert congested == pytest.approx(2.0, abs=1e-6)


def test_billing_window_validation():
    topo = line_network(2)
    state = NetworkState(topo, 4, PretiumConfig(window=2, lookback=2))
    with pytest.raises(ValueError):
        PriceComputer(state, billing_window=0)
