"""Tests for PretiumConfig validation."""

import pytest

from repro.core import PretiumConfig


def test_defaults_match_paper():
    c = PretiumConfig()
    assert c.congestion_threshold == 0.8    # last 20% congested
    assert c.congestion_multiplier == 2.0   # doubled
    assert c.topk_fraction == 0.1           # top 10%
    assert c.percentile == 95.0
    assert c.topk_encoding == "cvar"
    assert c.sam_enabled and c.menu_enabled


@pytest.mark.parametrize("kwargs", [
    {"route_count": 0},
    {"window": 0},
    {"window": 24, "lookback": 12},
    {"initial_price": -1.0},
    {"price_floor": -0.5},
    {"congestion_threshold": 0.0},
    {"congestion_threshold": 1.5},
    {"congestion_multiplier": 0.5},
    {"topk_fraction": 0.0},
    {"topk_fraction": 1.5},
    {"topk_encoding": "bogus"},
    {"percentile": 0.0},
    {"percentile": 101.0},
    {"highpri_fraction": 1.0},
    {"highpri_fraction": -0.1},
])
def test_invalid_configs_rejected(kwargs):
    with pytest.raises(ValueError):
        PretiumConfig(**kwargs)


def test_sorting_encoding_accepted():
    assert PretiumConfig(topk_encoding="sorting").topk_encoding == "sorting"


def test_threshold_one_means_no_congested_segment():
    c = PretiumConfig(congestion_threshold=1.0)
    assert c.congestion_threshold == 1.0
