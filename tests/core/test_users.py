"""Tests for customer behaviour models (§5)."""

import pytest

from repro.core import (AllOrNothingUser, BestResponseUser, ByteRequest,
                        MenuSegment, PriceMenu, ThresholdUser, UserModel)
from repro.network import Path, line_network


def menu_of(specs, best_effort=True):
    topo = line_network(2, capacity=100.0)
    path = Path((topo.link_between("n0", "n1"),))
    return PriceMenu([MenuSegment(q, p, path, t) for q, p, t in specs],
                     best_effort=best_effort)


def request(value, demand=10.0):
    return ByteRequest(1, "a", "b", demand, 0, 0, 3, value)


def test_best_response_matches_menu():
    user = BestResponseUser()
    menu = menu_of([(4.0, 1.0, 0), (4.0, 3.0, 1)])
    assert user.choose(request(2.0), menu) == 4.0
    assert user.choose(request(5.0), menu) == 10.0
    assert user.choose(request(0.5), menu) == 0.0


def test_all_or_nothing_accepts_good_deal():
    user = AllOrNothingUser()
    menu = menu_of([(10.0, 1.0, 0)])
    assert user.choose(request(2.0, demand=10.0), menu) == 10.0


def test_all_or_nothing_rejects_costly_deal():
    user = AllOrNothingUser()
    menu = menu_of([(10.0, 3.0, 0)])
    assert user.choose(request(2.0, demand=10.0), menu) == 0.0


def test_all_or_nothing_rejects_partial_guarantee():
    user = AllOrNothingUser()
    menu = menu_of([(6.0, 0.1, 0)])  # cheap but only 6 < 10 guaranteed
    assert user.choose(request(2.0, demand=10.0), menu) == 0.0


def test_all_or_nothing_accepts_mixed_price_if_worth_it():
    user = AllOrNothingUser()
    menu = menu_of([(5.0, 1.0, 0), (5.0, 2.0, 1)])
    # total price 15 for 10 units, value 2/unit -> utility +5
    assert user.choose(request(2.0, demand=10.0), menu) == 10.0


def test_threshold_user_requires_margin():
    menu = menu_of([(10.0, 1.0, 0)])
    picky = ThresholdUser(margin=0.6)
    # price 1.0/unit vs value 2.0/unit leaves 50% surplus < 60% required
    assert picky.choose(request(2.0), menu) == 0.0
    relaxed = ThresholdUser(margin=0.3)
    assert relaxed.choose(request(2.0), menu) == 10.0


def test_threshold_user_validation():
    with pytest.raises(ValueError):
        ThresholdUser(margin=-0.1)


def test_threshold_user_zero_choice_passthrough():
    menu = menu_of([(10.0, 5.0, 0)])
    assert ThresholdUser(0.1).choose(request(1.0), menu) == 0.0


def test_utility_helper():
    menu = menu_of([(4.0, 1.0, 0)])
    req = request(3.0, demand=4.0)
    assert UserModel.utility(req, menu, 4.0) == pytest.approx(12.0 - 4.0)
    assert UserModel.utility(req, menu, 4.0, delivered=2.0) == \
        pytest.approx(6.0 - 2.0)
    # delivery beyond the choice doesn't add utility
    assert UserModel.utility(req, menu, 4.0, delivered=9.0) == \
        pytest.approx(8.0)
