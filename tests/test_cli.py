"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import FIGURES, build_parser, main


def test_list_schemes(capsys):
    assert main(["list-schemes"]) == 0
    out = capsys.readouterr().out
    assert "Pretium" in out
    assert "RegionOracle" in out


def test_generate_workload_roundtrip(tmp_path, capsys):
    path = tmp_path / "wl.json"
    code = main(["generate-workload", "--out", str(path), "--nodes", "8",
                 "--days", "1", "--steps-per-day", "6", "--seed", "1"])
    assert code == 0
    assert "wrote" in capsys.readouterr().out
    payload = json.loads(path.read_text())
    assert payload["kind"] == "workload"
    assert payload["steps_per_day"] == 6


def test_run_on_generated_workload(tmp_path, capsys):
    wl_path = tmp_path / "wl.json"
    main(["generate-workload", "--out", str(wl_path), "--nodes", "8",
          "--days", "1", "--steps-per-day", "6", "--seed", "1"])
    capsys.readouterr()
    summary_path = tmp_path / "summary.json"
    code = main(["run", "--scheme", "NoPrices", "--workload", str(wl_path),
                 "--out", str(summary_path)])
    assert code == 0
    out = capsys.readouterr().out
    assert "welfare" in out
    record = json.loads(summary_path.read_text())
    assert record["scheme"] == "NoPrices"


def test_list_figures(capsys):
    assert main(["list-figures"]) == 0
    out = capsys.readouterr().out.split()
    assert out == sorted(FIGURES)
    assert "table4" in out
    assert "2" in out


def test_run_with_telemetry_writes_trace_and_report_reads_it(
        tmp_path, capsys):
    wl_path = tmp_path / "wl.json"
    main(["generate-workload", "--out", str(wl_path), "--nodes", "8",
          "--days", "1", "--steps-per-day", "6", "--seed", "1"])
    capsys.readouterr()
    trace_path = tmp_path / "trace.jsonl"
    code = main(["run", "--scheme", "Pretium", "--workload", str(wl_path),
                 "--telemetry", str(trace_path)])
    assert code == 0
    assert "telemetry trace written" in capsys.readouterr().out

    from repro.telemetry import module_runtimes, read_trace
    events = read_trace(trace_path)
    names = {e["name"] for e in events if e.get("type") == "span"}
    assert {"lp.solve", "ra", "sam", "pc", "run", "scheme.run"} <= names
    assert any(e.get("type") == "metrics" for e in events)

    # `telemetry report` renders the same trace as a runtime table
    assert main(["telemetry", "report", str(trace_path)]) == 0
    out = capsys.readouterr().out
    for name in ("ra", "sam", "pc", "lp.solve", "median_s", "p95_s"):
        assert name in out

    # the trace-derived module stats are the Table 4 numbers for this run
    runtimes = module_runtimes(events)
    assert set(runtimes) == {"RA", "SAM", "PC"}
    assert runtimes["RA"]["count"] > 0


def test_telemetry_report_missing_or_malformed_trace(tmp_path, capsys):
    assert main(["telemetry", "report", str(tmp_path / "nope.jsonl")]) == 1
    assert "no such trace file" in capsys.readouterr().err
    bad = tmp_path / "bad.jsonl"
    bad.write_text("not json\n")
    assert main(["telemetry", "report", str(bad)]) == 1
    assert "not a JSONL trace" in capsys.readouterr().err


def test_run_without_telemetry_leaves_tracer_disabled(tmp_path, capsys):
    from repro.telemetry import get_tracer
    wl_path = tmp_path / "wl.json"
    main(["generate-workload", "--out", str(wl_path), "--nodes", "8",
          "--days", "1", "--steps-per-day", "6", "--seed", "1"])
    summary_path = tmp_path / "summary.json"
    code = main(["run", "--scheme", "Pretium", "--workload", str(wl_path),
                 "--out", str(summary_path)])
    assert code == 0
    assert not get_tracer().enabled
    capsys.readouterr()
    # benchmark summary schema unchanged: runtimes still present
    record = json.loads(summary_path.read_text())
    assert "runtimes" in record
    assert "SAM" in record["runtimes"]


def test_figure_command(capsys):
    assert main(["figure", "2"]) == 0
    out = capsys.readouterr().out
    assert "pretium" in out
    assert "34" in out


def test_figure_5(capsys):
    assert main(["figure", "5"]) == 0
    out = capsys.readouterr().out
    assert "slope" in out


def test_all_figures_registered():
    for fid in ("1", "2", "4", "5", "6", "7", "8", "9", "10", "11", "12",
                "13", "14", "table4"):
        assert fid in FIGURES


def test_parser_rejects_unknown_scheme():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["run", "--scheme", "Gurobi"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])
