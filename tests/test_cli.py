"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import FIGURES, build_parser, main


def test_list_schemes(capsys):
    assert main(["list-schemes"]) == 0
    out = capsys.readouterr().out
    assert "Pretium" in out
    assert "RegionOracle" in out


def test_generate_workload_roundtrip(tmp_path, capsys):
    path = tmp_path / "wl.json"
    code = main(["generate-workload", "--out", str(path), "--nodes", "8",
                 "--days", "1", "--steps-per-day", "6", "--seed", "1"])
    assert code == 0
    assert "wrote" in capsys.readouterr().out
    payload = json.loads(path.read_text())
    assert payload["kind"] == "workload"
    assert payload["steps_per_day"] == 6


def test_run_on_generated_workload(tmp_path, capsys):
    wl_path = tmp_path / "wl.json"
    main(["generate-workload", "--out", str(wl_path), "--nodes", "8",
          "--days", "1", "--steps-per-day", "6", "--seed", "1"])
    capsys.readouterr()
    summary_path = tmp_path / "summary.json"
    code = main(["run", "--scheme", "NoPrices", "--workload", str(wl_path),
                 "--out", str(summary_path)])
    assert code == 0
    out = capsys.readouterr().out
    assert "welfare" in out
    record = json.loads(summary_path.read_text())
    assert record["scheme"] == "NoPrices"


def test_figure_command(capsys):
    assert main(["figure", "2"]) == 0
    out = capsys.readouterr().out
    assert "pretium" in out
    assert "34" in out


def test_figure_5(capsys):
    assert main(["figure", "5"]) == 0
    out = capsys.readouterr().out
    assert "slope" in out


def test_all_figures_registered():
    for fid in ("1", "2", "4", "5", "6", "7", "8", "9", "10", "11", "12",
                "13", "14", "table4"):
        assert fid in FIGURES


def test_parser_rejects_unknown_scheme():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["run", "--scheme", "Gurobi"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])
