"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import FIGURES, build_parser, main


def test_list_schemes(capsys):
    assert main(["list-schemes"]) == 0
    out = capsys.readouterr().out
    assert "Pretium" in out
    assert "RegionOracle" in out


def test_generate_workload_roundtrip(tmp_path, capsys):
    path = tmp_path / "wl.json"
    code = main(["generate-workload", "--out", str(path), "--nodes", "8",
                 "--days", "1", "--steps-per-day", "6", "--seed", "1"])
    assert code == 0
    assert "wrote" in capsys.readouterr().out
    payload = json.loads(path.read_text())
    assert payload["kind"] == "workload"
    assert payload["steps_per_day"] == 6


def test_run_on_generated_workload(tmp_path, capsys):
    wl_path = tmp_path / "wl.json"
    main(["generate-workload", "--out", str(wl_path), "--nodes", "8",
          "--days", "1", "--steps-per-day", "6", "--seed", "1"])
    capsys.readouterr()
    summary_path = tmp_path / "summary.json"
    code = main(["run", "--scheme", "NoPrices", "--workload", str(wl_path),
                 "--out", str(summary_path)])
    assert code == 0
    out = capsys.readouterr().out
    assert "welfare" in out
    record = json.loads(summary_path.read_text())
    assert record["scheme"] == "NoPrices"


def test_list_figures(capsys):
    assert main(["list-figures"]) == 0
    out = capsys.readouterr().out.split()
    assert out == sorted(FIGURES)
    assert "table4" in out
    assert "2" in out


def test_run_with_telemetry_writes_trace_and_report_reads_it(
        tmp_path, capsys):
    wl_path = tmp_path / "wl.json"
    main(["generate-workload", "--out", str(wl_path), "--nodes", "8",
          "--days", "1", "--steps-per-day", "6", "--seed", "1"])
    capsys.readouterr()
    trace_path = tmp_path / "trace.jsonl"
    code = main(["run", "--scheme", "Pretium", "--workload", str(wl_path),
                 "--telemetry", str(trace_path)])
    assert code == 0
    assert "telemetry trace written" in capsys.readouterr().out

    from repro.telemetry import module_runtimes, read_trace
    events = read_trace(trace_path)
    names = {e["name"] for e in events if e.get("type") == "span"}
    assert {"lp.solve", "ra", "sam", "pc", "run", "scheme.run"} <= names
    assert any(e.get("type") == "metrics" for e in events)

    # `telemetry report` renders the same trace as a runtime table
    assert main(["telemetry", "report", str(trace_path)]) == 0
    out = capsys.readouterr().out
    for name in ("ra", "sam", "pc", "lp.solve", "median_s", "p95_s"):
        assert name in out

    # the trace-derived module stats are the Table 4 numbers for this run
    runtimes = module_runtimes(events)
    assert set(runtimes) == {"RA", "SAM", "PC"}
    assert runtimes["RA"]["count"] > 0


def test_telemetry_report_missing_or_malformed_trace(tmp_path, capsys):
    assert main(["telemetry", "report", str(tmp_path / "nope.jsonl")]) == 1
    assert "no such trace file" in capsys.readouterr().err
    bad = tmp_path / "bad.jsonl"
    bad.write_text("not json\n")
    with pytest.warns(UserWarning, match="corrupt trace line"):
        assert main(["telemetry", "report", str(bad)]) == 1
    assert "not a JSONL trace" in capsys.readouterr().err


def test_run_without_telemetry_leaves_tracer_disabled(tmp_path, capsys):
    from repro.telemetry import get_tracer
    wl_path = tmp_path / "wl.json"
    main(["generate-workload", "--out", str(wl_path), "--nodes", "8",
          "--days", "1", "--steps-per-day", "6", "--seed", "1"])
    summary_path = tmp_path / "summary.json"
    code = main(["run", "--scheme", "Pretium", "--workload", str(wl_path),
                 "--out", str(summary_path)])
    assert code == 0
    assert not get_tracer().enabled
    capsys.readouterr()
    # benchmark summary schema unchanged: runtimes still present
    record = json.loads(summary_path.read_text())
    assert "runtimes" in record
    assert "SAM" in record["runtimes"]


def test_figure_command(capsys):
    assert main(["figure", "2"]) == 0
    out = capsys.readouterr().out
    assert "pretium" in out
    assert "34" in out


def test_figure_5(capsys):
    assert main(["figure", "5"]) == 0
    out = capsys.readouterr().out
    assert "slope" in out


def test_all_figures_registered():
    for fid in ("1", "2", "4", "5", "6", "7", "8", "9", "10", "11", "12",
                "13", "14", "table4"):
        assert fid in FIGURES


def test_parser_rejects_unknown_scheme():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["run", "--scheme", "Gurobi"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


@pytest.fixture(scope="module")
def traced_run(tmp_path_factory):
    """One small telemetry run shared by the telemetry-subcommand tests."""
    tmp_path = tmp_path_factory.mktemp("traced")
    wl_path = tmp_path / "wl.json"
    trace_path = tmp_path / "trace.jsonl"
    summary_path = tmp_path / "summary.json"
    assert main(["generate-workload", "--out", str(wl_path), "--nodes",
                 "8", "--days", "1", "--steps-per-day", "6",
                 "--seed", "1"]) == 0
    assert main(["run", "--scheme", "Pretium", "--workload", str(wl_path),
                 "--telemetry", str(trace_path),
                 "--out", str(summary_path)]) == 0
    return trace_path, summary_path


def test_telemetry_audit_clean_run(traced_run, capsys):
    trace_path, summary_path = traced_run
    capsys.readouterr()
    code = main(["telemetry", "audit", str(trace_path),
                 "--summary", str(summary_path)])
    assert code == 0
    assert "audit clean" in capsys.readouterr().out


def test_telemetry_audit_flags_tampered_trace(tmp_path, traced_run,
                                              capsys):
    trace_path, _ = traced_run
    tampered = tmp_path / "tampered.jsonl"
    lines = trace_path.read_text().splitlines()
    out_lines = []
    bumped = False
    for line in lines:
        event = json.loads(line)
        if (not bumped and event.get("type") == "ledger"
                and event.get("event") == "SETTLED"
                and event.get("payment", 0) > 0):
            event["payment"] = event["payment"] + 100.0
            bumped = True
        out_lines.append(json.dumps(event))
    assert bumped, "expected a paying SETTLED event in the trace"
    tampered.write_text("\n".join(out_lines) + "\n")
    capsys.readouterr()
    assert main(["telemetry", "audit", str(tampered)]) == 1
    out = capsys.readouterr().out
    assert "settlement" in out
    assert "unwaived" in out


def test_telemetry_export_chrome_trace(traced_run, tmp_path, capsys):
    trace_path, _ = traced_run
    out_path = tmp_path / "chrome.json"
    assert main(["telemetry", "export", str(trace_path), "--format",
                 "chrome-trace", "--out", str(out_path)]) == 0
    capsys.readouterr()
    doc = json.loads(out_path.read_text())
    events = doc["traceEvents"]
    assert events, "chrome trace should not be empty"
    assert {e["ph"] for e in events} <= {"M", "X", "i"}
    for event in events:
        assert {"ph", "pid", "tid", "name"} <= set(event)
    assert any(e["name"].startswith("ledger.") for e in events)
    assert any(e["ph"] == "X" for e in events)


def test_telemetry_export_prom(traced_run, capsys):
    trace_path, _ = traced_run
    assert main(["telemetry", "export", str(trace_path), "--format",
                 "prom"]) == 0
    out = capsys.readouterr().out
    assert "# TYPE pretium_admitted counter" in out
    import re
    line_ok = re.compile(
        r"^(# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]*( .*)?"
        r"|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_]+=\"[^\"]*\"\})? "
        r"(-?\d+(\.\d+)?([eE][+-]?\d+)?|NaN))$")
    for line in out.strip().splitlines():
        assert line_ok.match(line), line


def test_telemetry_timeline(traced_run, capsys):
    trace_path, _ = traced_run
    from repro.telemetry import Ledger
    ledger = Ledger.from_trace(trace_path)
    rid = next(h.rid for h in ledger.requests()
               if h.status == "COMPLETED")
    capsys.readouterr()
    assert main(["telemetry", "timeline", str(trace_path),
                 str(rid)]) == 0
    out = capsys.readouterr().out
    assert f"request {rid}" in out
    assert "ARRIVED" in out and "SETTLED" in out

    assert main(["telemetry", "timeline", str(trace_path), "999999"]) == 1
    assert "no ledger events" in capsys.readouterr().err


def test_telemetry_subcommands_reject_bad_trace(tmp_path, capsys):
    missing = str(tmp_path / "nope.jsonl")
    garbage = tmp_path / "bad.jsonl"
    garbage.write_text("not json at all\n")
    for sub in (["audit"], ["export", "--format", "prom"],
                ["timeline"]):
        args = ["telemetry", sub[0], missing] + sub[1:]
        if sub[0] == "timeline":
            args.append("0")
        assert main(args) == 1, sub
        assert "no such trace file" in capsys.readouterr().err
        args[2] = str(garbage)
        with pytest.warns(UserWarning, match="corrupt trace line"):
            assert main(args) == 1, sub
        assert "not a JSONL trace" in capsys.readouterr().err


# -- sweep subcommand ---------------------------------------------------------

@pytest.fixture(scope="module")
def swept(tmp_path_factory):
    """One 2-worker CLI sweep shared by the sweep-command tests."""
    tmp_path = tmp_path_factory.mktemp("swept")
    trace_path = tmp_path / "sweep.jsonl"
    out_path = tmp_path / "summaries.json"
    code = main(["sweep", "--schemes", "Pretium,NoPrices", "--scenario",
                 "tiny", "--seeds", "0,1", "--workers", "2",
                 "--telemetry", str(trace_path), "--out", str(out_path)])
    assert code == 0
    return trace_path, out_path


def test_sweep_prints_cell_table_and_writes_outputs(swept, capsys):
    trace_path, out_path = swept
    records = json.loads(out_path.read_text())
    assert len(records) == 4
    assert {r["scheme"] for r in records} == {"Pretium", "NoPrices"}
    assert all(r["ok"] and "welfare" in r for r in records)
    assert trace_path.exists()


def test_sweep_merged_trace_audits_clean(swept, capsys):
    trace_path, _ = swept
    capsys.readouterr()
    assert main(["telemetry", "audit", str(trace_path)]) == 0
    assert "audit clean" in capsys.readouterr().out


def test_sweep_timeline_cell_filter(swept, capsys):
    trace_path, _ = swept
    capsys.readouterr()
    assert main(["telemetry", "timeline", str(trace_path), "0",
                 "--cell", "0"]) == 0
    assert "request 0" in capsys.readouterr().out
    assert main(["telemetry", "timeline", str(trace_path), "0",
                 "--cell", "99"]) == 1
    assert "cell 99" in capsys.readouterr().err


def test_sweep_rejects_bad_grids(capsys):
    assert main(["sweep", "--schemes", "Gurobi"]) == 2
    assert "unknown scheme" in capsys.readouterr().err
    assert main(["sweep", "--schemes", "Pretium", "--seeds", "x"]) == 2
    assert "invalid seed list" in capsys.readouterr().err
    assert main(["sweep", "--schemes", "Pretium", "--faults", "zap"]) == 2
    assert "fault" in capsys.readouterr().err


def test_sweep_reports_cell_failures(tmp_path, capsys, monkeypatch):
    # Force one scheme to crash inside its cell via a bad kwarg spec.
    from repro.experiments import runner as runner_module
    from repro.experiments.runner import SCHEME_SPECS
    broken = SCHEME_SPECS["NoPrices"].with_kwargs(explode=True)
    monkeypatch.setitem(runner_module.SCHEME_SPECS, "NoPrices", broken)
    code = main(["sweep", "--schemes", "NoPrices,OPT", "--scenario",
                 "tiny"])
    assert code == 1
    captured = capsys.readouterr()
    assert "FAILED: TypeError" in captured.out
    assert "1 failed" in captured.out
    assert "explode" in captured.err


def test_run_accepts_workers_and_knob_flags(tmp_path, capsys):
    wl_path = tmp_path / "wl.json"
    main(["generate-workload", "--out", str(wl_path), "--nodes", "8",
          "--days", "1", "--steps-per-day", "6", "--seed", "1"])
    capsys.readouterr()
    assert main(["run", "--scheme", "Pretium", "--workload", str(wl_path),
                 "--workers", "2", "--quote-path", "scan",
                 "--solver-retries", "1"]) == 0
    assert "welfare" in capsys.readouterr().out


# -- campaign subcommand ------------------------------------------------------

def test_campaign_list_presets(capsys):
    assert main(["campaign", "--list"]) == 0
    out = capsys.readouterr().out
    assert "smoke:" in out and "paper-scale:" in out


def test_campaign_runs_smoke_preset_to_report(tmp_path, capsys):
    out_dir = tmp_path / "out"
    code = main(["campaign", "smoke", "--out-dir", str(out_dir),
                 "--workers", "2", "--chunk-size", "1"])
    assert code == 0
    printed = capsys.readouterr().out
    assert "3 cell(s), 0 failed" in printed
    assert "peak RSS" in printed
    assert (out_dir / "report.md").exists()
    assert (out_dir / "report.html").exists()
    assert (out_dir / "campaign.json").exists()
    record = json.loads((out_dir / "campaign.json").read_text())
    assert record["ok"] is True
    # the preset's telemetry trace is audit-ready
    capsys.readouterr()
    assert main(["telemetry", "audit", str(out_dir / "main.jsonl")]) == 0
    assert "audit clean" in capsys.readouterr().out


def test_campaign_runs_spec_file(tmp_path, capsys):
    spec_path = tmp_path / "spec.json"
    spec_path.write_text(json.dumps({
        "campaign": {"name": "mini", "title": "Mini"},
        "sweeps": [{"name": "s", "schemes": ["NoPrices"],
                    "scenario": "tiny", "seeds": [0]}],
        "figures": [{"name": "cells", "kind": "cell_table",
                     "sweep": "s"}]}))
    out_dir = tmp_path / "out"
    assert main(["campaign", str(spec_path),
                 "--out-dir", str(out_dir)]) == 0
    assert "1 cell(s), 0 failed" in capsys.readouterr().out
    assert "Mini" in (out_dir / "report.md").read_text()


def test_campaign_rejects_bad_specs(tmp_path, capsys):
    assert main(["campaign"]) == 2
    assert "preset name or spec path" in capsys.readouterr().err
    assert main(["campaign", "no-such-campaign"]) == 2
    assert "neither a campaign preset" in capsys.readouterr().err
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"campaign": {"name": "x"}}))
    assert main(["campaign", str(bad)]) == 2
    assert "declares no sweeps" in capsys.readouterr().err


def test_campaign_reports_cell_failures(tmp_path, capsys, monkeypatch):
    from repro.experiments import runner as runner_module
    from repro.experiments.runner import SCHEME_SPECS
    broken = SCHEME_SPECS["NoPrices"].with_kwargs(explode=True)
    monkeypatch.setitem(runner_module.SCHEME_SPECS, "NoPrices", broken)
    spec_path = tmp_path / "spec.json"
    spec_path.write_text(json.dumps({
        "campaign": {"name": "f"},
        "sweeps": [{"name": "s", "schemes": ["NoPrices", "OPT"],
                    "scenario": "tiny", "seeds": [0]}]}))
    code = main(["campaign", str(spec_path),
                 "--out-dir", str(tmp_path / "out")])
    assert code == 1
    captured = capsys.readouterr()
    assert "1 failed" in captured.out
    assert "explode" in captured.err


# -- serve --------------------------------------------------------------------

def test_serve_runs_load_and_writes_report(tmp_path, capsys):
    out = tmp_path / "service.json"
    trace = tmp_path / "service.jsonl"
    code = main(["serve", "--scenario", "tiny", "--seed", "0",
                 "--price-checks", "2", "--batch-window", "0.002",
                 "--telemetry", str(trace), "--out", str(out)])
    assert code == 0
    printed = capsys.readouterr().out
    assert "quotes_per_s" in printed
    assert "cache_hits" in printed
    assert "welfare" in printed
    payload = json.loads(out.read_text())
    assert payload["load"]["offered"] > 0
    assert payload["load"]["errors"] == 0
    assert payload["load"]["answered"] == payload["load"]["offered"]
    assert payload["cache"]["service.menu_cache.hits"] > 0
    assert payload["service_options"]["batch_window"] == 0.002
    assert payload["summary"]["n_requests"] == payload["load"]["offered"]
    # the trace is audit-ready
    capsys.readouterr()
    assert main(["telemetry", "audit", str(trace)]) == 0
    assert "audit clean" in capsys.readouterr().out


def test_serve_accepts_service_knobs_and_rejects_bad_ones(capsys):
    assert main(["serve", "--scenario", "tiny", "--seed", "0",
                 "--cache-size", "0", "--max-pending", "8",
                 "--quote-deadline", "5", "--quote-path", "scan"]) == 0
    capsys.readouterr()
    assert main(["serve", "--scenario", "tiny",
                 "--quote-deadline", "-1"]) == 2
    assert "error" in capsys.readouterr().err


def test_serve_rejects_bad_fault_spec(capsys):
    assert main(["serve", "--scenario", "tiny",
                 "--faults", "sam:nonsense"]) == 2
    assert "error" in capsys.readouterr().err
