"""Unit tests for the topology model."""

import pytest

from repro.network import Link, Topology


def build_triangle() -> Topology:
    t = Topology(name="tri")
    t.add_link("a", "b", 10.0)
    t.add_link("b", "c", 5.0, metered=True, cost_per_unit=2.0)
    t.add_link("c", "a", 7.0)
    return t


def test_add_link_registers_nodes():
    t = build_triangle()
    assert set(t.nodes) == {"a", "b", "c"}
    assert t.num_nodes == 3
    assert t.num_links == 3


def test_link_lookup():
    t = build_triangle()
    link = t.link_between("b", "c")
    assert link.capacity == 5.0
    assert link.metered
    assert link.cost_per_unit == 2.0
    assert t.link(link.index) is link
    assert t.has_link("a", "b")
    assert not t.has_link("b", "a")


def test_link_key_and_repr():
    t = build_triangle()
    link = t.link_between("a", "b")
    assert link.key == ("a", "b")
    assert "a->b" in repr(link)
    assert "metered" in repr(t.link_between("b", "c"))


def test_out_links():
    t = build_triangle()
    out = t.out_links("a")
    assert [l.dst for l in out] == ["b"]


def test_duplicate_link_rejected():
    t = build_triangle()
    with pytest.raises(ValueError):
        t.add_link("a", "b", 1.0)


def test_self_loop_rejected():
    t = Topology()
    with pytest.raises(ValueError):
        t.add_link("a", "a", 1.0)


def test_bad_capacity_rejected():
    t = Topology()
    with pytest.raises(ValueError):
        t.add_link("a", "b", 0.0)
    with pytest.raises(ValueError):
        t.add_link("a", "b", -1.0)


def test_negative_cost_rejected():
    with pytest.raises(ValueError):
        Link(0, "a", "b", 1.0, True, -0.5)


def test_duplex_link():
    t = Topology()
    fwd, rev = t.add_duplex_link("x", "y", 8.0, metered=True,
                                 cost_per_unit=1.5)
    assert fwd.key == ("x", "y")
    assert rev.key == ("y", "x")
    assert rev.metered and rev.cost_per_unit == 1.5


def test_metered_links():
    t = build_triangle()
    assert [l.key for l in t.metered_links()] == [("b", "c")]


def test_regions():
    t = Topology()
    t.add_node("a", region="us")
    t.add_node("b", region="eu")
    t.add_node("c")
    assert t.region_of("a") == "us"
    assert t.region_of("c") is None
    assert t.regions() == {"a": "us", "b": "eu"}


def test_contains_and_iter():
    t = build_triangle()
    assert "a" in t
    assert "z" not in t
    assert len(list(t)) == 3


def test_to_networkx_preserves_attributes():
    t = build_triangle()
    g = t.to_networkx()
    assert g.number_of_nodes() == 3
    assert g.edges["b", "c"]["metered"] is True
    assert g.edges["b", "c"]["capacity"] == 5.0


def test_strong_connectivity():
    t = build_triangle()
    assert t.is_strongly_connected()
    t2 = Topology()
    t2.add_link("a", "b", 1.0)
    assert not t2.is_strongly_connected()
    assert Topology().is_strongly_connected()


def test_scaled_costs():
    t = build_triangle()
    t2 = t.scaled_costs(2.0)
    assert t2.link_between("b", "c").cost_per_unit == 4.0
    assert t2.link_between("a", "b").cost_per_unit == 0.0
    assert t2.num_links == t.num_links
    # original untouched
    assert t.link_between("b", "c").cost_per_unit == 2.0
    with pytest.raises(ValueError):
        t.scaled_costs(-1.0)
