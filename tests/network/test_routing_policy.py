"""Tests for the routing-policy layer of :class:`PathCache`.

``kpaths`` must reproduce the pre-policy behaviour exactly (static full
candidate sets, refresh a no-op); ``ecmp`` narrows to the equal-cost
min-hop subset; ``flowlet`` pins each request to one hash-chosen
candidate and re-hashes when a refresh bumps the epoch.
"""

import zlib

import pytest

from repro.network import Topology
from repro.network.paths import (PathCache, ROUTING_POLICIES,
                                 _flowlet_hash, k_shortest_paths)


def diamond() -> Topology:
    """S -> T via a 1-hop edge, a 2-hop detour and a 3-hop detour."""
    topology = Topology(name="diamond")
    topology.add_link("S", "T", 10.0)
    topology.add_link("S", "A", 10.0)
    topology.add_link("A", "T", 10.0)
    topology.add_link("S", "B", 10.0)
    topology.add_link("B", "C", 10.0)
    topology.add_link("C", "T", 10.0)
    return topology


def test_policy_table_and_validation():
    assert ROUTING_POLICIES == ("kpaths", "ecmp", "flowlet")
    with pytest.raises(ValueError, match="unknown routing policy"):
        PathCache(diamond(), policy="spray")


def test_kpaths_returns_the_full_candidate_set():
    cache = PathCache(diamond(), k=3)
    routes = cache.routes("S", "T")
    assert [path.hop_count for path in routes] == [1, 2, 3]
    # rid is irrelevant under kpaths.
    assert cache.routes("S", "T", rid=42) == routes


def test_ecmp_narrows_to_min_hop_candidates():
    topology = diamond()
    # A second 1-hop S->T edge would be a parallel link; instead check
    # the min-hop subset on a pair with several equal-cost options.
    topology.add_link("S", "D", 10.0)
    topology.add_link("D", "T", 10.0)
    cache = PathCache(topology, k=4, policy="ecmp")
    routes = cache.routes("S", "T")
    assert [path.hop_count for path in routes] == [1]
    via = cache.routes("S", "C")
    assert all(path.hop_count == min(p.hop_count for p in via)
               for path in via)


def test_flowlet_pins_one_candidate_per_request():
    cache = PathCache(diamond(), k=3, policy="flowlet")
    candidates = k_shortest_paths(diamond(), "S", "T", 3)
    for rid in range(20):
        pinned = cache.routes("S", "T", rid=rid)
        assert len(pinned) == 1
        expected = _flowlet_hash("S", "T", rid, 0) % len(candidates)
        assert pinned[0] == candidates[expected]
    # Pair-level queries (no rid) still see the full candidate set.
    assert len(cache.routes("S", "T")) == 3


def test_flowlet_hash_is_crc32_stable_across_processes():
    # Pinning must not depend on Python's per-process string-hash salt.
    assert _flowlet_hash("S", "T", 7, 0) == \
        zlib.crc32(b"S|T|7|0")
    assert _flowlet_hash("S", "T", 7, 1) != _flowlet_hash("S", "T", 7, 0)


def test_kpaths_refresh_is_a_noop():
    cache = PathCache(diamond(), k=3)
    before = cache.routes("S", "T")
    cache.refresh(dead=(("S", "T"),))
    assert cache.epoch == 0
    assert cache.routes("S", "T") == before


def test_dynamic_policies_route_around_dead_links():
    cache = PathCache(diamond(), k=2, policy="ecmp")
    assert [p.hop_count for p in cache.routes("S", "T")] == [1]
    cache.refresh(dead=(("S", "T"),))
    assert cache.epoch == 1
    survivors = cache.routes("S", "T")
    assert survivors and all(
        ("S", "T") not in [(link.src, link.dst) for link in path.links]
        for path in survivors)
    # The min-hop subset re-forms over the survivors (2-hop detour).
    assert [p.hop_count for p in survivors] == [2]


def test_flowlet_rehashes_on_refresh():
    cache = PathCache(diamond(), k=3, policy="flowlet")
    before = {rid: cache.routes("S", "T", rid=rid)[0]
              for rid in range(40)}
    cache.refresh(dead=(("S", "A"),))
    assert cache.epoch == 1
    after = {rid: cache.routes("S", "T", rid=rid)[0] for rid in range(40)}
    # No surviving candidate crosses the dead link ...
    for path in after.values():
        assert ("S", "A") not in [(link.src, link.dst)
                                  for link in path.links]
    # ... and the epoch bump re-spread the flowlets (some rid whose old
    # pin survived still moved, because the hash input changed).
    moved = [rid for rid in before
             if before[rid] != after[rid]
             and ("S", "A") not in [(link.src, link.dst)
                                    for link in before[rid].links]]
    assert moved, "epoch bump should re-hash surviving flowlets too"


def test_fully_disconnected_pair_keeps_static_routes():
    topology = Topology(name="line")
    topology.add_link("S", "T", 10.0)
    cache = PathCache(topology, k=2, policy="flowlet")
    static = cache.routes("S", "T")
    cache.refresh(dead=(("S", "T"),))
    # Quoting still sees the (zero-capacity) static set rather than an
    # empty admissible set.
    assert cache.routes("S", "T") == static
