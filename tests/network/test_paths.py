"""Unit tests for path computation and the route cache."""

import pytest

from repro.network import (Path, PathCache, Topology, k_shortest_paths,
                           line_network, parallel_paths_network)


def test_path_construction_and_nodes():
    t = line_network(4)
    links = (t.link_between("n0", "n1"), t.link_between("n1", "n2"))
    p = Path(links)
    assert p.nodes == ("n0", "n1", "n2")
    assert p.src == "n0"
    assert p.dst == "n2"
    assert p.hop_count == 2
    assert len(p) == 2
    assert p.link_indices() == (links[0].index, links[1].index)


def test_path_rejects_broken_chain():
    t = parallel_paths_network()
    with pytest.raises(ValueError):
        Path((t.link_between("S", "M1"), t.link_between("M2", "T")))
    with pytest.raises(ValueError):
        Path(())


def test_path_equality_and_hash():
    t = line_network(3)
    links = (t.link_between("n0", "n1"), t.link_between("n1", "n2"))
    assert Path(links) == Path(links)
    assert len({Path(links), Path(links)}) == 1


def test_k_shortest_on_parallel_paths():
    t = parallel_paths_network()
    paths = k_shortest_paths(t, "S", "T", k=5)
    assert len(paths) == 2
    assert all(p.hop_count == 2 for p in paths)
    middles = {p.nodes[1] for p in paths}
    assert middles == {"M1", "M2"}


def test_k_shortest_respects_k():
    t = parallel_paths_network()
    assert len(k_shortest_paths(t, "S", "T", k=1)) == 1


def test_k_shortest_orders_by_hops():
    t = parallel_paths_network()
    # add a longer detour S->X->M1 making a 3-hop path
    t.add_link("S", "X", 5.0)
    t.add_link("X", "M1", 5.0)
    paths = k_shortest_paths(t, "S", "T", k=3)
    assert [p.hop_count for p in paths] == [2, 2, 3]


def test_k_shortest_no_path():
    t = Topology()
    t.add_node("a")
    t.add_node("b")
    t.add_link("b", "a", 1.0)
    assert k_shortest_paths(t, "a", "b", k=2) == []


def test_k_shortest_validates_input():
    t = line_network(3)
    with pytest.raises(KeyError):
        k_shortest_paths(t, "n0", "zz", k=1)
    with pytest.raises(ValueError):
        k_shortest_paths(t, "n0", "n0", k=1)
    with pytest.raises(ValueError):
        k_shortest_paths(t, "n0", "n1", k=0)


def test_path_cache_memoises():
    t = parallel_paths_network()
    cache = PathCache(t, k=2)
    first = cache.routes("S", "T")
    second = cache.routes("S", "T")
    assert first == second
    assert len(cache) == 1


def test_path_cache_returns_copies():
    t = parallel_paths_network()
    cache = PathCache(t, k=2)
    routes = cache.routes("S", "T")
    routes.clear()
    assert len(cache.routes("S", "T")) == 2


def test_path_cache_warm():
    t = parallel_paths_network()
    cache = PathCache(t, k=1)
    cache.warm([("S", "T"), ("S", "M1")])
    assert len(cache) == 2


def test_path_cache_validates_k():
    with pytest.raises(ValueError):
        PathCache(parallel_paths_network(), k=0)
