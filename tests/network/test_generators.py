"""Tests for the synthetic WAN generators."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network import (figure2_network, is_inter_region, line_network,
                           nodes_by_region, parallel_paths_network,
                           production_wan, small_wan, wan_topology)


def test_small_wan_shape():
    t = small_wan(seed=1)
    assert t.num_nodes == 20
    assert t.is_strongly_connected()
    assert len(nodes_by_region(t)) == 4


def test_wan_determinism():
    a = wan_topology(n_nodes=15, seed=7)
    b = wan_topology(n_nodes=15, seed=7)
    assert [l.key for l in a.links] == [l.key for l in b.links]
    assert [l.capacity for l in a.links] == [l.capacity for l in b.links]


def test_wan_seed_changes_topology():
    a = wan_topology(n_nodes=15, seed=1)
    b = wan_topology(n_nodes=15, seed=2)
    assert ([l.key for l in a.links] != [l.key for l in b.links]
            or [l.capacity for l in a.links] != [l.capacity for l in b.links])


def test_wan_metered_fraction_roughly_respected():
    t = wan_topology(n_nodes=40, n_regions=4, metered_fraction=0.2, seed=3)
    metered_undirected = len(t.metered_links()) / 2
    total_undirected = t.num_links / 2
    assert metered_undirected / total_undirected == pytest.approx(0.2,
                                                                  abs=0.05)


def test_wan_metered_links_have_costs():
    t = wan_topology(n_nodes=20, seed=5)
    for link in t.metered_links():
        assert link.cost_per_unit > 0
    for link in t.links:
        if not link.metered:
            assert link.cost_per_unit == 0.0


def test_wan_rejects_tiny():
    with pytest.raises(ValueError):
        wan_topology(n_nodes=1)


def test_production_wan_scale():
    t = production_wan(seed=0)
    assert t.num_nodes == 106
    undirected = t.num_links // 2
    assert 190 <= undirected <= 260
    assert t.is_strongly_connected()
    metered_share = len(t.metered_links()) / t.num_links
    assert metered_share == pytest.approx(0.15, abs=0.05)


def test_figure2_network():
    t = figure2_network()
    assert set(t.nodes) == {"A", "B", "C", "D"}
    assert t.num_links == 3
    assert all(l.capacity == 2.0 for l in t.links)


def test_line_and_parallel_helpers():
    line = line_network(5, capacity=3.0)
    assert line.num_links == 4
    assert all(l.capacity == 3.0 for l in line.links)
    par = parallel_paths_network(4.0, 6.0)
    assert par.link_between("S", "M1").capacity == 4.0
    assert par.link_between("S", "M2").capacity == 6.0


def test_inter_region_classification():
    t = wan_topology(n_nodes=12, n_regions=3, seed=2)
    groups = nodes_by_region(t)
    regions = list(groups)
    same = groups[regions[0]]
    assert not is_inter_region(t, same[0], same[1])
    other = groups[regions[1]][0]
    assert is_inter_region(t, same[0], other)


@settings(max_examples=10, deadline=None)
@given(n_nodes=st.integers(min_value=4, max_value=30),
       n_regions=st.integers(min_value=1, max_value=5),
       seed=st.integers(min_value=0, max_value=100))
def test_wan_always_strongly_connected(n_nodes, n_regions, seed):
    t = wan_topology(n_nodes=n_nodes, n_regions=n_regions, seed=seed)
    assert t.is_strongly_connected()
    assert all(l.capacity > 0 for l in t.links)
