"""Tests for the link cost model (true vs proxy billing)."""

import numpy as np
import pytest

from repro.costs import LinkCostModel
from repro.network import Topology, line_network


def metered_line() -> Topology:
    t = Topology()
    t.add_link("a", "b", 10.0, metered=True, cost_per_unit=2.0)
    t.add_link("b", "c", 10.0)  # owned, free
    return t


def test_true_cost_single_window():
    topo = metered_line()
    model = LinkCostModel(topo, billing_window=10)
    loads = np.zeros((10, 2))
    loads[:, 0] = np.arange(10.0)
    loads[:, 1] = 100.0  # owned link: must not matter
    expected = 2.0 * np.percentile(np.arange(10.0), 95)
    assert model.true_cost(loads) == pytest.approx(expected)


def test_proxy_cost_single_window():
    topo = metered_line()
    model = LinkCostModel(topo, billing_window=10)
    loads = np.zeros((10, 2))
    loads[:, 0] = np.arange(10.0)
    # top 10% of 10 samples = 1 sample = max = 9
    assert model.proxy_cost(loads) == pytest.approx(2.0 * 9.0)


def test_multiple_billing_windows_summed():
    topo = metered_line()
    model = LinkCostModel(topo, billing_window=5)
    loads = np.zeros((10, 2))
    loads[:5, 0] = 4.0
    loads[5:, 0] = 8.0
    assert model.true_cost(loads) == pytest.approx(2.0 * (4.0 + 8.0))


def test_partial_final_window():
    topo = metered_line()
    model = LinkCostModel(topo, billing_window=8)
    loads = np.ones((10, 2)) * 3.0
    # windows [0:8] and [8:10], both constant 3 -> percentile 3 each
    assert model.true_cost(loads) == pytest.approx(2.0 * 3.0 * 2)


def test_no_metered_links_zero_cost():
    topo = line_network(3)
    model = LinkCostModel(topo, billing_window=5)
    loads = np.ones((10, topo.num_links)) * 7.0
    assert model.true_cost(loads) == 0.0
    assert model.proxy_cost(loads) == 0.0
    assert not model.has_metered_links()


def test_per_link_breakdown():
    topo = Topology()
    topo.add_link("a", "b", 10.0, metered=True, cost_per_unit=1.0)
    topo.add_link("b", "c", 10.0, metered=True, cost_per_unit=3.0)
    model = LinkCostModel(topo, billing_window=10)
    loads = np.zeros((10, 2))
    loads[:, 0] = 2.0
    loads[:, 1] = 5.0
    breakdown = model.per_link_true_cost(loads)
    assert breakdown[0] == pytest.approx(2.0)
    assert breakdown[1] == pytest.approx(15.0)
    assert model.true_cost(loads) == pytest.approx(sum(breakdown.values()))


def test_proxy_upper_bounds_true_cost():
    """z_e is positively biased over y_e, so proxy >= true billing."""
    rng = np.random.default_rng(0)
    topo = metered_line()
    model = LinkCostModel(topo, billing_window=24)
    loads = np.zeros((48, 2))
    loads[:, 0] = rng.exponential(5.0, size=48)
    assert model.proxy_cost(loads) >= model.true_cost(loads) - 1e-9


def test_validation():
    topo = metered_line()
    with pytest.raises(ValueError):
        LinkCostModel(topo, billing_window=0)
    with pytest.raises(ValueError):
        LinkCostModel(topo, billing_window=5, percentile=150)
    with pytest.raises(ValueError):
        LinkCostModel(topo, billing_window=5, topk_fraction=0.0)
    model = LinkCostModel(topo, billing_window=5)
    with pytest.raises(ValueError):
        model.true_cost(np.zeros((10, 5)))
    with pytest.raises(ValueError):
        model.proxy_cost(np.zeros(10))


def test_repr():
    model = LinkCostModel(metered_line(), billing_window=5)
    assert "metered" in repr(model)
