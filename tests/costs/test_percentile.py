"""Tests for percentile measures and the Figure 5 correlation analysis."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.costs import (correlate_topk_with_percentile, percentile_usage,
                         synthetic_link_traffic, topk_count, topk_mean)


def test_topk_count():
    assert topk_count(30, 0.1) == 3
    assert topk_count(5, 0.1) == 1  # at least one
    assert topk_count(100, 0.25) == 25
    with pytest.raises(ValueError):
        topk_count(0, 0.1)
    with pytest.raises(ValueError):
        topk_count(10, 0.0)
    with pytest.raises(ValueError):
        topk_count(10, 1.5)


def test_percentile_usage_matches_numpy():
    samples = np.arange(100.0)
    assert percentile_usage(samples, 95) == pytest.approx(
        np.percentile(samples, 95))
    with pytest.raises(ValueError):
        percentile_usage(np.zeros((2, 2)))
    with pytest.raises(ValueError):
        percentile_usage(np.array([]))


def test_topk_mean_paper_example():
    """The paper's example: 30 steps, top usage on steps 7, 13, 26."""
    samples = np.ones(30)
    samples[7], samples[13], samples[26] = 10.0, 12.0, 11.0
    assert topk_mean(samples, 0.1) == pytest.approx((10 + 12 + 11) / 3)


def test_topk_mean_validation():
    with pytest.raises(ValueError):
        topk_mean(np.array([]))


@settings(max_examples=50, deadline=None)
@given(st.lists(st.floats(min_value=0, max_value=1000), min_size=2,
                max_size=60))
def test_topk_mean_upper_bounds_percentile(samples):
    """z_e >= y_95 whenever k <= 5% of samples... in general z_e is
    positively biased over the percentile (paper's claim) when the top-10%
    mean covers at most the top 10% tail."""
    arr = np.array(samples)
    z = topk_mean(arr, 0.1)
    y90 = percentile_usage(arr, 90)
    assert z >= y90 - 1e-9


@pytest.mark.parametrize("dist", ["normal", "exponential", "pareto"])
def test_figure5_linear_correlation(dist):
    """z_e and y_e are strongly linearly correlated for all three
    synthetic distributions the paper validates on."""
    loads = synthetic_link_traffic(dist, n_steps=24 * 7, n_links=60, seed=1)
    result = correlate_topk_with_percentile(loads)
    assert result.r > 0.9
    assert result.slope > 0
    assert result.r_squared > 0.8
    assert len(result.y_values) == 60


def test_correlation_excludes_idle_links():
    loads = synthetic_link_traffic("normal", 100, 5, seed=0)
    loads[:, 2] = 0.0
    result = correlate_topk_with_percentile(loads)
    assert len(result.y_values) == 4


def test_correlation_validation():
    with pytest.raises(ValueError):
        correlate_topk_with_percentile(np.zeros(10))
    with pytest.raises(ValueError):
        correlate_topk_with_percentile(np.zeros((10, 3)))


def test_synthetic_traffic_validation():
    with pytest.raises(ValueError):
        synthetic_link_traffic("weibull", 10, 5)


def test_synthetic_traffic_nonneg_and_shape():
    for dist in ("normal", "exponential", "pareto"):
        loads = synthetic_link_traffic(dist, 50, 7, seed=2)
        assert loads.shape == (50, 7)
        assert np.all(loads >= 0)


def test_pareto_bias_larger_than_normal():
    """The z/y gap is wider for heavy-tailed traffic (paper: 'the bias
    will be more significant for heavy-tailed traffic distributions')."""
    def mean_relative_gap(dist):
        loads = synthetic_link_traffic(dist, 24 * 14, 40, seed=3)
        gaps = []
        for link in range(loads.shape[1]):
            y = percentile_usage(loads[:, link])
            z = topk_mean(loads[:, link])
            gaps.append((z - y) / max(y, 1e-9))
        return np.mean(gaps)

    assert mean_relative_gap("pareto") > mean_relative_gap("normal")
