"""Tests for the consolidated :class:`repro.options.RunOptions` bundle."""

import pickle

import pytest

from repro.experiments.runner import run_scheme
from repro.experiments.scenarios import tiny_scenario
from repro.faults import FaultSpecError
from repro.options import (RunOptions, coerce_options, run_context)
from repro.sim import simulate
from repro.sim.engine import RunResult
from repro.telemetry import read_trace


@pytest.fixture(scope="module")
def scenario():
    return tiny_scenario(seed=0)


# -- validation ---------------------------------------------------------------

def test_defaults_ask_for_nothing():
    options = RunOptions()
    assert options.config_overrides() == {}
    assert options.faults is None and options.telemetry is None
    assert options.workers == 1
    assert options.chunk_size is None and options.worker_start == "auto"


@pytest.mark.parametrize("kwargs", [
    dict(lp_builder="dense"),
    dict(quote_path="binary"),
    dict(solver_retries=-1),
    dict(solver_backoff=-0.5),
    dict(solver_time_limit=0),
    dict(solver_maxiter=0),
    dict(workers=0),
    dict(chunk_size=0),
    dict(chunk_size=-3),
    dict(worker_start="fork"),
])
def test_invalid_values_rejected_eagerly(kwargs):
    with pytest.raises(ValueError):
        RunOptions(**kwargs)


def test_bad_fault_spec_rejected_at_construction():
    with pytest.raises(FaultSpecError):
        RunOptions(faults="sam:nonsense")


def test_config_overrides_collects_non_none_config_fields():
    options = RunOptions(quote_path="scan", solver_retries=0,
                         faults="sam:solver@1", telemetry="t.jsonl")
    assert options.config_overrides() == {"quote_path": "scan",
                                          "solver_retries": 0}


def test_replace_and_pickle_roundtrip():
    options = RunOptions(lp_builder="expr", workers=4,
                         trace_tags=(("cell", 3),))
    clone = pickle.loads(pickle.dumps(options))
    assert clone == options
    assert options.replace(workers=1).workers == 1
    assert options.workers == 4  # frozen original untouched


# -- coercion of legacy flat kwargs -------------------------------------------

def test_coerce_options_passthrough_and_merge():
    assert coerce_options(None, {}, "f()") is None
    base = RunOptions(workers=2)
    with pytest.warns(DeprecationWarning, match="deprecated"):
        merged = coerce_options(base, {"faults": "pc:timeout@1"}, "f()")
    assert merged.workers == 2
    assert merged.faults == "pc:timeout@1"


def test_coerce_options_rejects_unknown_names():
    with pytest.raises(TypeError, match="retries"):
        coerce_options(None, {"retries": 3}, "f()")


# -- run_context --------------------------------------------------------------

def test_run_context_none_installs_nothing():
    with run_context(None) as env:
        assert env.tracer is None and env.injector is None


def test_run_context_scopes_injector_and_tagged_trace(tmp_path):
    trace = tmp_path / "deep" / "trace.jsonl"
    options = RunOptions(faults="sam:solver@1x1", fault_seed=3,
                         telemetry=trace, trace_tags=(("cell", 7),))
    with run_context(options) as env:
        assert env.injector is not None
        assert env.tracer is not None
        env.tracer.emit({"kind": "probe"})
    events = read_trace(trace)  # parent dir was created, sink closed
    assert events and all(event["cell"] == 7 for event in events)


# -- deprecation shims on the public entry points -----------------------------

def test_run_scheme_flat_kwargs_deprecated_but_functional(scenario,
                                                          tmp_path):
    trace = tmp_path / "t.jsonl"
    with pytest.warns(DeprecationWarning, match="run_scheme"):
        result = run_scheme("Pretium", scenario,
                            faults="sam:solver@2x1", telemetry=trace)
    assert isinstance(result, RunResult)
    assert result.extras["faults_injected"] == 1
    assert trace.exists()


def test_run_scheme_unknown_kwarg_is_type_error(scenario):
    with pytest.raises(TypeError, match="fault_spec"):
        run_scheme("NoPrices", scenario, fault_spec="sam:solver@1")


def test_simulate_accepts_options_and_flat_kwargs(scenario, tmp_path):
    from repro.core import PretiumController
    options = RunOptions(telemetry=tmp_path / "a.jsonl")
    with_options = simulate(PretiumController(), scenario.workload,
                            options=options)
    with pytest.warns(DeprecationWarning, match="simulate"):
        with_flat = simulate(PretiumController(), scenario.workload,
                             telemetry=tmp_path / "b.jsonl")
    assert with_options.delivered == with_flat.delivered
    assert (tmp_path / "a.jsonl").exists()
    assert (tmp_path / "b.jsonl").exists()


def test_options_quote_path_reaches_the_controller(scenario):
    scan = run_scheme("Pretium", scenario,
                      options=RunOptions(quote_path="scan"))
    heap = run_scheme("Pretium", scenario,
                      options=RunOptions(quote_path="heap"))
    # Both quote paths are exact: same economics, different machinery.
    assert scan.payments == heap.payments
    assert scan.delivered == heap.delivered


def test_options_lp_builder_reaches_offline_schemes(scenario):
    coo = run_scheme("OPT", scenario, options=RunOptions(lp_builder="coo"))
    expr = run_scheme("OPT", scenario,
                      options=RunOptions(lp_builder="expr"))
    assert coo.delivered == pytest.approx(expr.delivered)


def test_invalid_routing_classes_and_kills_rejected_eagerly():
    with pytest.raises(ValueError, match="unknown routing"):
        RunOptions(routing="spray")
    with pytest.raises(ValueError, match="unknown class mix"):
        RunOptions(classes="qos99")
    with pytest.raises(ValueError):
        RunOptions(link_kills="garbage")
    # The happy spellings validate without touching process state.
    options = RunOptions(routing="flowlet", classes="qos3",
                         link_kills="a>b@1")
    assert options.config_overrides()["routing"] == "flowlet"
    assert "classes" not in options.config_overrides()
    assert "link_kills" not in options.config_overrides()


def test_coerce_options_warning_spells_out_the_replacement():
    """The deprecation message must hand back copy-pasteable code."""
    with pytest.warns(DeprecationWarning) as caught:
        coerce_options(None, {"workers": 2, "faults": "pc:timeout@1"},
                       "simulate()")
    (message,) = {str(w.message) for w in caught}
    assert "pass options=RunOptions(faults='pc:timeout@1', workers=2) " \
        "instead" in message
    assert message.startswith(
        "passing flat keyword options to simulate() is deprecated")
