"""Tests for the process-parallel sweep subsystem.

The load-bearing property is *bit-identical determinism*: a multi-worker
sweep must produce exactly the same allocations, payments and summaries
as the serial reference path, for every scheme, with and without an
injected fault schedule.  Measured module runtimes are the one summary
entry excluded from comparisons — wall-clock is not deterministic.
"""

import pickle

import numpy as np
import pytest

from repro.experiments.runner import SCHEME_SPECS, scheme_spec
from repro.experiments.scenarios import ScenarioSpec
from repro.experiments.sweep import (CellResult, SweepCell, SweepGrid,
                                     SweepResult, run_cell, run_sweep)
from repro.options import RunOptions
from repro.sim import summarize
from repro.telemetry import audit_events, read_trace, unwaived
from repro.experiments import runner


def comparable(summary):
    return {k: v for k, v in summary.items() if k != "runtimes"}


def assert_cells_identical(ref_cells, par_cells):
    assert len(ref_cells) == len(par_cells)
    for ref, par in zip(ref_cells, par_cells):
        assert ref.label == par.label
        assert ref.ok and par.ok, (ref.detail, par.detail)
        assert comparable(ref.summary) == comparable(par.summary), ref.label
        assert ref.delivered == par.delivered, ref.label
        assert ref.payments == par.payments, ref.label
        assert ref.chosen == par.chosen, ref.label
        assert np.array_equal(ref.loads, par.loads), ref.label


# -- grid construction --------------------------------------------------------

def test_grid_normalizes_names_to_specs():
    grid = SweepGrid(schemes=["Pretium", scheme_spec("NoPrices")],
                     scenarios=["tiny", ScenarioSpec.of("quick")],
                     seeds=[0, 1])
    assert [s.name for s in grid.schemes] == ["Pretium", "NoPrices"]
    assert [s.name for s in grid.scenarios] == ["tiny", "quick"]
    assert grid.seeds == (0, 1)
    assert len(grid) == 8


def test_grid_cell_order_is_scenario_seed_scheme():
    grid = SweepGrid(schemes=["Pretium", "OPT"], scenarios=["tiny"],
                     seeds=[0, 1])
    labels = [cell.label for cell in grid.cells()]
    assert labels == ["Pretium/tiny/seed=0", "OPT/tiny/seed=0",
                      "Pretium/tiny/seed=1", "OPT/tiny/seed=1"]
    assert [cell.index for cell in grid.cells()] == [0, 1, 2, 3]


def test_grid_rejects_built_scenarios_and_empty_axes():
    from repro.experiments.scenarios import tiny_scenario
    with pytest.raises(TypeError, match="picklable"):
        SweepGrid(schemes=["Pretium"], scenarios=[tiny_scenario()])
    with pytest.raises(KeyError, match="unknown scheme"):
        SweepGrid(schemes=["Gurobi"])
    with pytest.raises(ValueError, match="at least one scheme"):
        SweepGrid(schemes=[])
    with pytest.raises(ValueError, match="at least one seed"):
        SweepGrid(schemes=["Pretium"], seeds=[])


def test_cells_are_picklable():
    for cell in SweepGrid(schemes=sorted(SCHEME_SPECS),
                          scenarios=["tiny"]).cells():
        clone = pickle.loads(pickle.dumps(cell))
        assert clone == cell


# -- the serial reference path ------------------------------------------------

def test_run_cell_matches_direct_run_scheme():
    cell = SweepCell(index=0, scheme=scheme_spec("NoPrices"),
                     scenario=ScenarioSpec.of("tiny"), seed=3)
    out = run_cell(cell)
    scenario = ScenarioSpec.of("tiny").build(seed=3)
    direct = runner.run_scheme("NoPrices", scenario)
    expect = summarize(direct, scenario.cost_model)
    assert out.ok
    assert comparable(out.summary) == comparable(expect)
    assert out.delivered == dict(direct.delivered)
    assert out.payments == dict(direct.payments)
    assert np.array_equal(out.loads, direct.loads)


def test_serial_sweep_collects_every_cell_and_reports_progress():
    grid = SweepGrid(schemes=["Pretium", "NoPrices"], scenarios=["tiny"],
                     seeds=[0, 1])
    seen = []
    result = run_sweep(grid, options=RunOptions(workers=1),
                       progress=lambda done, total, cell:
                       seen.append((done, total, cell.label)))
    assert isinstance(result, SweepResult)
    assert result.ok and result.n_workers == 1
    assert [cell.index for cell in result.cells] == [0, 1, 2, 3]
    assert [done for done, _, _ in seen] == [1, 2, 3, 4]
    assert all(total == 4 for _, total, _ in seen)
    assert result.summary_for("Pretium", seed=1)["scheme"] == "Pretium"
    with pytest.raises(KeyError):
        result.summary_for("Pretium", seed=7)


def test_structured_failure_capture():
    # An unknown kwarg crashes the scheme constructor inside the cell.
    bad = SCHEME_SPECS["NoPrices"].with_kwargs(bogus_knob=1)
    grid = SweepGrid(schemes=[bad, "OPT"], scenarios=["tiny"])
    result = run_sweep(grid)
    assert not result.ok
    assert len(result.failures) == 1
    failed = result.failures[0]
    assert isinstance(failed, CellResult)
    assert failed.error == "TypeError"
    assert "bogus_knob" in failed.detail
    assert "bogus_knob" in failed.traceback
    # the healthy cell still completed
    assert result.cells[1].ok
    records = result.summaries()
    assert records[0]["ok"] is False and "error" in records[0]
    assert records[1]["ok"] is True and "welfare" in records[1]


# -- parallel determinism (the acceptance criterion) --------------------------

def test_four_worker_sweep_bit_identical_for_every_scheme():
    grid = SweepGrid(schemes=sorted(SCHEME_SPECS), scenarios=["tiny"],
                     seeds=[0])
    serial = run_sweep(grid, options=RunOptions(workers=1))
    parallel = run_sweep(grid, options=RunOptions(workers=4))
    assert parallel.n_workers == 4
    assert_cells_identical(serial.cells, parallel.cells)


def test_four_worker_sweep_bit_identical_under_faults():
    faulty = RunOptions(faults="sam:solver@2x1,ra:timeout@3x1",
                        fault_seed=7)
    grid = SweepGrid(schemes=["Pretium", "Pretium-NoMenu", "NoPrices"],
                     scenarios=["tiny"], seeds=[0, 1])
    serial = run_sweep(grid, options=faulty.replace(workers=1))
    parallel = run_sweep(grid, options=faulty.replace(workers=4))
    assert_cells_identical(serial.cells, parallel.cells)


def test_fleet_merged_metrics_match_serial_run_bit_for_bit():
    """Fleet aggregation must be lossless: the counters a 4-worker
    sweep merges back equal the serial run's, value for value.  Only
    scheduling-dependent metrics are excluded — the per-worker scenario
    cache (a shared in-process cache hits where isolated worker caches
    miss) and per-worker gauges (RSS) — everything the engines count is
    deterministic and must survive the shard/merge round trip exactly."""
    from repro.telemetry import use_registry

    grid = SweepGrid(schemes=["Pretium", "NoPrices"], scenarios=["tiny"],
                     seeds=[0, 1])

    def fleet_counters(options):
        with use_registry():
            result = run_sweep(grid, options=options)
        assert result.ok
        fleet = result.fleet_metrics()
        kinds = fleet.kinds()
        return {name: value for name, value in fleet.snapshot().items()
                if kinds[name] == "counter"
                and not name.startswith("sweep.scenario_cache")}

    serial = fleet_counters(RunOptions(workers=1))
    parallel = fleet_counters(RunOptions(workers=4))
    assert serial == parallel  # bit-for-bit, not approximately
    assert serial["sweep.cells"] == 4
    assert serial.get("pretium.admitted", 0) > 0


def test_cell_metrics_ride_along_and_parent_registry_aggregates():
    """Each CellResult carries its registry dump, and run_sweep merges
    them into the caller's registry as cells complete."""
    from repro.telemetry import get_registry, use_registry

    grid = SweepGrid(schemes=["Pretium"], scenarios=["tiny"],
                     seeds=[0, 1])
    with use_registry():
        result = run_sweep(grid, options=RunOptions(workers=2))
        live = get_registry()
        assert live.counter("sweep.cells").value == 2
    for cell in result.cells:
        assert cell.metrics["counters"]["sweep.cells"] == 1
        assert "pretium.admitted" in cell.metrics["counters"]
    merged = result.fleet_metrics().snapshot()
    assert merged["sweep.cells"] == 2
    assert merged["pretium.admitted"] == \
        live.counter("pretium.admitted").value


def test_worker_count_is_capped_by_grid_size():
    grid = SweepGrid(schemes=["NoPrices"], scenarios=["tiny"])
    result = run_sweep(grid, options=RunOptions(workers=8))
    assert result.n_workers == 1  # one cell -> serial path


# -- merged telemetry ---------------------------------------------------------

def test_parallel_sweep_merges_shards_into_audit_clean_trace(tmp_path):
    trace = tmp_path / "sweep.jsonl"
    grid = SweepGrid(schemes=["Pretium", "NoPrices"], scenarios=["tiny"],
                     seeds=[0, 1])
    result = run_sweep(grid, options=RunOptions(workers=2,
                                                telemetry=trace))
    assert result.ok
    assert result.trace_path == str(trace)
    # shards are merged and removed
    assert trace.exists()
    assert list(tmp_path.glob("sweep.cell-*.jsonl")) == []

    events = read_trace(trace)
    cells = {event.get("cell") for event in events}
    assert cells == {0, 1, 2, 3}
    assert all("worker" in event for event in events)
    # events stay grouped in cell order after the merge
    order = [event["cell"] for event in events]
    assert order == sorted(order)

    findings = audit_events(events)
    assert unwaived(findings) == []


def test_sweep_without_sink_writes_no_shard_files(tmp_path, monkeypatch):
    """With no telemetry sink configured, no per-cell shard may ever be
    created — not merged-and-removed, never written at all."""
    monkeypatch.chdir(tmp_path)     # any stray shard would land here
    grid = SweepGrid(schemes=["Pretium", "NoPrices"], scenarios=["tiny"],
                     seeds=[0])
    result = run_sweep(grid, options=RunOptions(workers=2))
    assert result.ok
    assert result.trace_path is None
    assert all(cell.trace_path is None for cell in result.cells)
    assert list(tmp_path.rglob("*.jsonl")) == []


def test_legacy_flat_kwargs_still_work_with_warning():
    grid = SweepGrid(schemes=["NoPrices"], scenarios=["tiny"])
    with pytest.warns(DeprecationWarning, match="workers"):
        result = run_sweep(grid, workers=1)
    assert result.ok
