"""Smoke tests for the cheap figure generators.

The load sweeps (Figures 6-14) are exercised by the benchmarks; here we
cover the generators that run in seconds and the §5 deviation machinery.
"""

import numpy as np
import pytest

from repro.core import ByteRequest
from repro.experiments import deviation_study, quick_scenario
from repro.experiments.figures import figure1, figure2, figure4, figure5
from repro.experiments.incentives import (DeviationOutcome, DeviationReport,
                                          _deviant_workload, utility_in_run)
from repro.network import parallel_paths_network
from repro.traffic import Workload


def test_figure1_shape():
    data = figure1(seed=0, n_nodes=16, days=3)
    assert len(data["ratios"]) == len(data["cdf"])
    assert 0 <= data["fraction_above_5x"] <= 1
    assert 0 <= data["fraction_below_2x"] <= 1
    assert np.all(np.diff(data["cdf"]) >= 0)


def test_figure2_welfare():
    data = figure2()
    assert data["welfare"]["pretium"] == pytest.approx(34.0)
    assert data["welfare"]["no-price"] == pytest.approx(23.0)


def test_figure4_deadline_monotonicity():
    data = figure4(seed=0)
    assert data["loose"]["x_bar"] >= data["tight"]["x_bar"] - 1e-9
    if data["tight"]["breakpoints"] and data["loose"]["breakpoints"]:
        # first marginal price: loose deadline is no more expensive
        assert data["loose"]["breakpoints"][0][1] <= \
            data["tight"]["breakpoints"][0][1] + 1e-9


def test_figure5_correlations():
    data = figure5(seed=0)
    assert set(data) == {"normal", "exponential", "pareto"}
    for stats in data.values():
        assert stats["r"] > 0.85
        assert stats["slope"] > 0
        assert len(stats["points"]) == 60


# -- §5 deviation machinery ----------------------------------------------

def deviation_workload():
    topo = parallel_paths_network(10.0, 10.0)
    reqs = [ByteRequest(0, "S", "T", 8.0, 0, 0, 2, 2.0),
            ByteRequest(1, "S", "T", 5.0, 1, 1, 3, 1.5)]
    return Workload(topo, reqs, n_steps=4, steps_per_day=4)


def test_deviant_workload_later_deadline():
    wl = deviation_workload()
    deviant, rids = _deviant_workload(wl, wl.requests[0], "later-deadline",
                                      stretch=2)
    assert rids == (0,)
    altered = [r for r in deviant.requests if r.rid == 0][0]
    assert altered.deadline == 3  # clamped to horizon
    assert deviant.n_requests == 2


def test_deviant_workload_split():
    wl = deviation_workload()
    deviant, rids = _deviant_workload(wl, wl.requests[0], "split", 1)
    assert len(rids) == 2
    halves = [r for r in deviant.requests if r.rid in rids]
    assert sum(r.demand for r in halves) == pytest.approx(8.0)
    assert deviant.n_requests == 3


def test_deviant_workload_inflate():
    wl = deviation_workload()
    deviant, rids = _deviant_workload(wl, wl.requests[0], "inflate-demand", 1)
    altered = [r for r in deviant.requests if r.rid == 0][0]
    assert altered.demand == pytest.approx(12.0)


def test_deviant_workload_earlier_skips_one_step_windows():
    topo = parallel_paths_network()
    reqs = [ByteRequest(0, "S", "T", 2.0, 0, 0, 0, 1.0)]
    wl = Workload(topo, reqs, n_steps=2, steps_per_day=2)
    _, rids = _deviant_workload(wl, reqs[0], "earlier-deadline", 1)
    assert rids == ()


def test_deviant_workload_unknown():
    wl = deviation_workload()
    with pytest.raises(ValueError):
        _deviant_workload(wl, wl.requests[0], "bribe", 1)


def test_deviation_report_aggregates():
    outcomes = [
        DeviationOutcome(1, "split", 10.0, 12.0),       # +20%
        DeviationOutcome(1, "later-deadline", 10.0, 9.0),
        DeviationOutcome(2, "split", 5.0, 5.0),
    ]
    report = DeviationReport(outcomes)
    assert report.n_requests == 2
    assert report.fraction_benefiting == pytest.approx(0.5)
    assert report.mean_relative_gain == pytest.approx(0.2)


def test_deviation_report_empty():
    report = DeviationReport([])
    assert report.fraction_benefiting == 0.0
    assert report.mean_relative_gain == 0.0


def test_deviation_study_runs_end_to_end():
    report = deviation_study(quick_scenario(seed=3).workload, n_samples=3,
                             deviations=("later-deadline", "split"), seed=0)
    assert report.outcomes
    assert 0.0 <= report.fraction_benefiting <= 1.0


def test_truthfulness_on_uncontended_network():
    """With ample capacity and flat prices, deviations cannot help."""
    wl = deviation_workload()
    report = deviation_study(wl, n_samples=2, seed=0)
    for outcome in report.outcomes:
        assert outcome.gain <= 1e-6
