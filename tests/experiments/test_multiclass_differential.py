"""Differential guarantees for the traffic-class / routing-policy layer.

The multi-class API is opt-in: a workload synthesized with a single
neutral class and the default ``kpaths`` routing policy must be
*bit-identical* to the pre-class pipeline — same request stream, and
for every registered scheme the same deliveries, payments and loads.
Exact ``==`` on floats is deliberate: both runs must take the same code
path, not merely agree numerically.
"""

import numpy as np
import pytest

from repro.experiments.runner import run_scheme
from repro.experiments.scenarios import tiny_scenario
from repro.options import RunOptions
from repro.registry import SCHEMES
from repro.sim import summarize
from repro.traffic.classes import DEFAULT_CLASS

ALL_SCHEMES = SCHEMES.names()


@pytest.fixture(scope="module")
def worlds():
    """The same tiny world, classless and single-default-class."""
    return tiny_scenario(seed=0), tiny_scenario(seed=0, classes="default")


def test_single_default_class_workload_is_bit_identical(worlds):
    base, single = worlds
    assert base.workload.classes == ()
    assert single.workload.classes == (DEFAULT_CLASS,)
    assert len(base.workload.requests) == len(single.workload.requests)
    for a, b in zip(base.workload.requests, single.workload.requests):
        assert (a.rid, a.src, a.dst, a.arrival, a.start, a.deadline) == \
            (b.rid, b.src, b.dst, b.arrival, b.start, b.deadline)
        assert a.demand == b.demand and a.value == b.value
        assert a.scavenger == b.scavenger
        assert a.cls == "default" and b.cls == "default"


@pytest.mark.parametrize("name", ALL_SCHEMES)
def test_every_scheme_is_bit_identical_single_class_kpaths(worlds, name):
    base, single = worlds
    plain = run_scheme(name, base)
    classed = run_scheme(name, single,
                         options=RunOptions(routing="kpaths"))
    assert classed.delivered == plain.delivered
    assert classed.payments == plain.payments
    assert classed.chosen == plain.chosen
    assert np.array_equal(classed.loads, plain.loads)


def test_single_class_summary_adds_only_the_per_class_key(worlds):
    base, single = worlds
    plain = summarize(run_scheme("Pretium", base), base.cost_model)
    classed = summarize(run_scheme("Pretium", single),
                        single.cost_model)
    per_class = classed.pop("per_class")
    # Wall-clock module runtimes are the one nondeterministic field.
    classed.pop("runtimes", None)
    plain.pop("runtimes", None)
    assert classed == plain
    # ... and the one neutral class accounts for the whole run.
    assert set(per_class) == {"default"}
    # approx: the roll-up sums per request, the headline sums the
    # delivered dict — same values, different summation order.
    assert per_class["default"]["delivered"] == \
        pytest.approx(plain["delivered"], rel=1e-12)
    assert per_class["default"]["payments"] == \
        pytest.approx(plain["payments"], rel=1e-12)


def test_multiclass_run_actually_differs():
    """Guard against the classes knob silently doing nothing."""
    neutral = tiny_scenario(seed=0)
    classed = tiny_scenario(seed=0, classes="qos3")
    assert {r.cls for r in classed.workload.requests} > {"default"} \
        or len({r.cls for r in classed.workload.requests}) > 1
    plain = run_scheme("Pretium", neutral)
    mixed = run_scheme("Pretium", classed)
    assert mixed.delivered != plain.delivered \
        or mixed.payments != plain.payments
