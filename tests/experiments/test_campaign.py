"""Tests for the declarative campaign runner.

A campaign spec (TOML/JSON/dict) must fail loudly at *load* time when it
names anything unknown — scheme, scenario, figure kind, sweep reference,
option field — and, once validated, run every sweep through the
persistent-worker engine and emit a self-contained report artifact
(Markdown + HTML + ``campaign.json``) whose numbers agree with the
sweep results it came from.
"""

import json

import pytest

from repro.experiments.campaign import (CAMPAIGN_PRESETS, CampaignError,
                                        CampaignSpec, FIGURE_KINDS,
                                        campaign_spec, run_campaign)
from repro.options import RunOptions


def smoke_dict(**overrides):
    """A tiny valid spec dict (2 cells on the tiny world)."""
    raw = {
        "campaign": {"name": "t", "title": "T"},
        "options": {"workers": 1},
        "sweeps": [{"name": "main", "schemes": ["Pretium", "NoPrices"],
                    "scenario": "tiny", "loads": [2.0], "seeds": [0]}],
        "figures": [{"name": "welfare", "kind": "welfare_vs_load",
                     "sweep": "main"},
                    {"name": "cells", "kind": "cell_table",
                     "sweep": "main"}],
    }
    raw.update(overrides)
    return raw


# -- spec validation ----------------------------------------------------------

def test_from_dict_builds_a_validated_spec():
    spec = CampaignSpec.from_dict(smoke_dict())
    assert spec.name == "t"
    assert [sweep.name for sweep in spec.sweeps] == ["main"]
    assert spec.options.workers == 1
    grid = spec.sweeps[0].grid()
    assert len(grid) == 2
    assert grid.scenarios[0].label == "tiny(load_factor=2.0)"


@pytest.mark.parametrize("mutate, match", [
    (lambda raw: raw.pop("sweeps"), "declares no sweeps"),
    (lambda raw: raw["sweeps"][0].update(schemes=["Nope"]),
     "unknown scheme"),
    (lambda raw: raw["sweeps"][0].update(scenario="zz"),
     "unknown scenario"),
    (lambda raw: raw["figures"][0].update(sweep="zz"),
     "references unknown sweep"),
    (lambda raw: raw["figures"][0].update(kind="nope"), "unknown kind"),
    (lambda raw: raw.update(bogus={}), "unknown top-level"),
    (lambda raw: raw["options"].update(wrkers=2), r"unknown \[options\]"),
    (lambda raw: raw["options"].update(workers=0), r"bad \[options\]"),
    (lambda raw: raw["sweeps"].append(dict(raw["sweeps"][0])),
     "duplicate sweep names"),
    (lambda raw: raw["sweeps"][0].update(bogus=1), "unknown key"),
])
def test_bad_specs_fail_at_load_time(mutate, match):
    raw = smoke_dict()
    mutate(raw)
    with pytest.raises(CampaignError, match=match):
        CampaignSpec.from_dict(raw)


def test_spec_files_roundtrip_json_and_toml(tmp_path):
    spec = CampaignSpec.from_dict(smoke_dict())
    json_path = tmp_path / "spec.json"
    json_path.write_text(json.dumps(spec.to_dict()))
    assert CampaignSpec.from_file(json_path) == spec

    toml_path = tmp_path / "spec.toml"
    toml_path.write_text(
        '[campaign]\nname = "t"\ntitle = "T"\n\n'
        '[options]\nworkers = 1\n\n'
        '[[sweeps]]\nname = "main"\n'
        'schemes = ["Pretium", "NoPrices"]\nscenario = "tiny"\n'
        'loads = [2.0]\nseeds = [0]\n\n'
        '[[figures]]\nname = "welfare"\nkind = "welfare_vs_load"\n'
        'sweep = "main"\n\n'
        '[[figures]]\nname = "cells"\nkind = "cell_table"\n'
        'sweep = "main"\n')
    try:
        import tomllib  # noqa: F401 — gate: stdlib tomllib is 3.11+
    except ImportError:
        with pytest.raises(CampaignError, match="tomllib"):
            CampaignSpec.from_file(toml_path)
    else:
        assert CampaignSpec.from_file(toml_path) == spec

    bad = tmp_path / "spec.yaml"
    bad.write_text("campaign:\n  name: t\n")
    with pytest.raises(CampaignError, match="unsupported"):
        CampaignSpec.from_file(bad)


def test_campaign_spec_resolver():
    assert campaign_spec("smoke").name == "smoke"
    spec = CampaignSpec.from_dict(smoke_dict())
    assert campaign_spec(spec) is spec
    assert campaign_spec(smoke_dict()) == spec
    with pytest.raises(CampaignError, match="neither a campaign preset"):
        campaign_spec("no-such-preset-or-file")


def test_presets_are_valid_specs():
    for name, raw in CAMPAIGN_PRESETS.items():
        spec = CampaignSpec.from_dict(raw)
        assert spec.name == name
        for figure in spec.figures:
            assert figure.kind in FIGURE_KINDS


# -- execution ----------------------------------------------------------------

def test_run_campaign_writes_report_artifacts(tmp_path):
    spec = CampaignSpec.from_dict(smoke_dict())
    result = run_campaign(spec, tmp_path / "out")
    assert result.ok and result.n_cells == 2
    assert result.wall_s > 0 and result.max_rss_mb > 0

    markdown = result.report_md.read_text()
    assert "# Campaign report: T" in markdown
    assert "welfare" in markdown and "peak RSS" in markdown
    html = result.report_html.read_text()
    assert html.startswith("<!DOCTYPE html>")
    assert "<table>" in html and "Pretium" in html

    record = json.loads(result.summary_path.read_text())
    assert record["ok"] is True and record["n_cells"] == 2
    assert record["spec"]["campaign"]["name"] == "t"
    stage_names = [stage["stage"] for stage in record["stages"]]
    assert stage_names == ["sweep:main", "figures", "report"]
    assert all(stage["wall_s"] >= 0 for stage in record["stages"])
    # the report's welfare figure agrees with the sweep summaries
    summaries = {row["scheme"]: row for row in record["sweeps"]["main"]}
    welfare_rows = {row[0]: float(row[1])
                    for row in record["figures"]["welfare"]["rows"]}
    for scheme in ("Pretium", "NoPrices"):
        assert welfare_rows[scheme] == pytest.approx(
            summaries[scheme]["welfare"], abs=1e-3)


def test_run_campaign_options_override_spec(tmp_path):
    spec = CampaignSpec.from_dict(smoke_dict())
    result = run_campaign(spec, tmp_path, options=RunOptions(workers=2))
    assert result.sweeps["main"].n_workers == 2


def test_run_campaign_telemetry_traces_per_sweep(tmp_path):
    spec = CampaignSpec.from_dict(smoke_dict(telemetry=True))
    result = run_campaign(spec, tmp_path)
    assert result.ok
    trace = tmp_path / "main.jsonl"
    assert trace.exists()
    assert list(tmp_path.glob("main.cell-*.jsonl")) == []


def test_failed_cells_surface_in_report_and_ok_flag(tmp_path):
    raw = smoke_dict()
    raw["sweeps"][0]["scenario_kwargs"] = {"bogus_kwarg": 1}
    spec = CampaignSpec.from_dict(raw)
    result = run_campaign(spec, tmp_path)
    assert not result.ok
    assert len(result.failures) == 2
    markdown = result.report_md.read_text()
    assert "## Failures" in markdown and "bogus_kwarg" in markdown
    record = json.loads(result.summary_path.read_text())
    assert record["ok"] is False and record["n_failures"] == 2


def test_smoke_preset_runs_end_to_end(tmp_path):
    result = run_campaign(campaign_spec("smoke"), tmp_path)
    # 2 tiny cells plus the multiclass/flowlet cell.
    assert result.ok and result.n_cells == 3
    assert (tmp_path / "report.md").exists()
    assert (tmp_path / "main.jsonl").exists()  # preset asks for telemetry
    assert (tmp_path / "multiclass.jsonl").exists()
    # The per-class figure picked up the multi-class cell's roll-up.
    per_class = result.figures["classes"]
    assert per_class["columns"][2] == "class"


def test_campaign_reports_fleet_metrics_and_slo(tmp_path):
    spec = CampaignSpec.from_dict(smoke_dict())
    result = run_campaign(spec, tmp_path)
    # The fleet view merges every cell's registry dump: the campaign's
    # own counters are there, and the welfare-bearing Pretium counters
    # arrived from the worker side.
    assert result.fleet_metrics["sweep.cells"] == 2
    assert result.fleet_metrics.get("pretium.admitted", 0) > 0
    # SLO status is campaign-flavoured (engine totals, not service's).
    assert result.slo["ok"] is True
    assert result.slo["objectives"]["error_budget"]["ok"] is True

    markdown = result.report_md.read_text()
    assert "## SLO" in markdown and "## Fleet metrics" in markdown
    assert "error_budget" in markdown
    html = result.report_html.read_text()
    assert "Fleet metrics" in html

    record = json.loads(result.summary_path.read_text())
    assert record["fleet_metrics"]["sweep.cells"] == 2
    assert record["slo"]["ok"] is True


def test_campaign_serves_live_metrics_while_running(tmp_path, monkeypatch):
    """metrics_port=0 exposes fleet-merged /metrics for the campaign's
    duration; progress callbacks fire while it is up, so scrape there."""
    import urllib.request

    from repro.telemetry import live as live_module

    ports, scraped = [], []
    real_server = live_module.LiveMetricsServer

    class Spy(real_server):
        def start(self):
            out = real_server.start(self)
            ports.append(self.port)
            return out

    monkeypatch.setattr(live_module, "LiveMetricsServer", Spy)

    def scrape_on_progress(done, total, cell):
        with urllib.request.urlopen(
                f"http://127.0.0.1:{ports[0]}/metrics",
                timeout=5) as response:
            scraped.append(response.read().decode())

    spec = CampaignSpec.from_dict(smoke_dict())
    result = run_campaign(spec, tmp_path, metrics_port=0,
                          progress=scrape_on_progress)
    assert result.ok
    assert scraped and "# TYPE" in scraped[0]
    # By the last scrape the parent registry had aggregated cell one.
    assert "sweep_cells" in scraped[-1]
