"""Tests for the Figure 2 example reproduction."""

import pytest

from repro.experiments.figure2 import (EXAMPLE_REQUESTS, figure2_table,
                                       no_price_row, per_link_price_row,
                                       per_time_price_row, pretium_row,
                                       fixed_price_row, requests)


def test_requests_match_paper_spec():
    reqs = {r.rid: r for r in requests()}
    assert reqs[1].value == 8 and reqs[1].demand == 2
    assert reqs[4].demand == 4 and reqs[4].value == 1
    assert reqs[2].deadline == 1
    assert reqs[3].deadline == 0


def test_no_price_matches_paper_row():
    """The paper's 'No Price' row: units (1, 2, 1, 3), welfare 23."""
    row = no_price_row()
    assert row.units[1] == pytest.approx(1.0)
    assert row.units[2] == pytest.approx(2.0)
    assert row.units[3] == pytest.approx(1.0)
    assert row.units[4] == pytest.approx(3.0)
    assert row.welfare == pytest.approx(23.0)


def test_pretium_achieves_maximum_welfare():
    """Pretium reaches the example's maximum welfare of 34."""
    row = pretium_row()
    assert row.welfare == pytest.approx(34.0)
    assert row.units[1] == pytest.approx(2.0)
    assert row.units[4] == pytest.approx(2.0)


def test_welfare_ordering_matches_paper():
    """no-price < fixed <= per-link <= per-time < pretium."""
    table = {row.scheme: row.welfare for row in figure2_table()}
    assert table["no-price"] < table["fixed"]
    assert table["fixed"] <= table["per-link"] + 1e-9
    assert table["per-link"] <= table["per-time"] + 1e-9
    assert table["per-time"] < table["pretium"]
    assert table["pretium"] == pytest.approx(34.0)


def test_fixed_price_excludes_low_value():
    row = fixed_price_row()
    # the optimal fixed price shuts out the value-1 request R4
    assert row.units[4] == pytest.approx(0.0)


def test_per_time_recovers_deferrable_requests():
    """Temporal pricing lets R4 (deferrable, low value) back in."""
    row = per_time_price_row()
    assert row.units[4] > 0.0


def test_capacity_never_exceeded_in_any_row():
    for row in figure2_table():
        # A->B carries R1+R2: at most 2 per step x 2 steps, but R1 is
        # restricted to step 0, so R1 <= 2 and R1+R2 <= 4.
        assert row.units[1] <= 2.0 + 1e-9
        assert row.units[1] + row.units[2] <= 4.0 + 1e-9
        # C->D carries R3+R4 (4 capacity over both steps)
        assert row.units[3] + row.units[4] <= 4.0 + 1e-9
