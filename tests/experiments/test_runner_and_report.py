"""Tests for the scheme runner, scenarios and report formatting."""

import numpy as np
import pytest

from repro.experiments import (SCHEME_FACTORIES, format_series, format_table,
                               make_scheme, quick_scenario, run_scheme,
                               run_schemes, standard_scenario,
                               standard_topology, summaries)
from repro.sim import metrics


def test_all_factories_instantiable():
    for name in SCHEME_FACTORIES:
        scheme = make_scheme(name)
        assert scheme is not None


def test_make_scheme_unknown():
    with pytest.raises(KeyError):
        make_scheme("Gurobi")


def test_quick_scenario_shape():
    scenario = quick_scenario(seed=1)
    assert scenario.workload.n_requests > 10
    assert scenario.cost_model.has_metered_links()
    assert "load=2" in scenario.description


def test_standard_topology_cost_factor():
    base = standard_topology(seed=0)
    doubled = standard_topology(seed=0, cost_factor=2.0)
    for link, scaled in zip(base.links, doubled.links):
        assert scaled.cost_per_unit == pytest.approx(2 * link.cost_per_unit)


def test_standard_scenario_load_scaling():
    light = standard_scenario(load_factor=0.5, n_days=1, seed=0)
    heavy = standard_scenario(load_factor=2.0, n_days=1, seed=0)
    assert heavy.workload.total_demand() > 2 * light.workload.total_demand()


def test_run_scheme_accepts_names_and_instances():
    scenario = quick_scenario(seed=0)
    by_name = run_scheme("NoPrices", scenario)
    assert by_name.scheme_name == "NoPrices"
    from repro.baselines import NoPrices
    by_instance = run_scheme(NoPrices(), scenario)
    assert by_instance.delivered == pytest.approx(by_name.delivered)


def test_run_schemes_and_summaries():
    scenario = quick_scenario(seed=0)
    results = run_schemes(("OPT", "Pretium"), scenario)
    assert set(results) == {"OPT", "Pretium"}
    records = summaries(results, scenario)
    assert records["OPT"]["welfare"] >= records["Pretium"]["welfare"] - 1e-6
    assert records["Pretium"]["scheme"] == "Pretium"


def test_opt_dominates_pretium_on_quick_scenario():
    scenario = quick_scenario(seed=2)
    results = run_schemes(("OPT", "Pretium"), scenario)
    opt = metrics.welfare(results["OPT"], scenario.cost_model)
    pretium = metrics.welfare(results["Pretium"], scenario.cost_model)
    assert pretium <= opt + 1e-6
    assert pretium > 0


def test_format_table_alignment():
    table = format_table(["a", "bb"], [[1, 2.5], ["xx", 12345.6]])
    lines = table.splitlines()
    assert len(lines) == 4
    assert lines[0].startswith("a")
    assert "12346" in lines[3]


def test_format_series():
    out = format_series("demo", [1, 2], {"s1": [0.1, 0.2], "s2": [3, 4]},
                        x_label="load")
    assert out.startswith("== demo ==")
    assert "load" in out and "s1" in out
    assert "0.200" in out


def test_format_handles_nan():
    out = format_table(["x"], [[float("nan")]])
    assert "nan" in out


def test_make_scheme_accepts_kwargs():
    scheme = make_scheme("RegionOracle", grid_points=3)
    assert scheme.grid_points == 3
    default = make_scheme("RegionOracle")
    assert default.grid_points == 5


def test_scheme_specs_are_picklable():
    import pickle
    from repro.experiments import SCHEME_SPECS
    for name, spec in SCHEME_SPECS.items():
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert clone.name == name
        assert clone.build() is not None


def test_scheme_factories_alias_keeps_callable_idiom():
    # Historical call sites do SCHEME_FACTORIES[name]() — specs are
    # callable, so the lambda-era idiom keeps working.
    scheme = SCHEME_FACTORIES["NoPrices"]()
    assert scheme.name == "NoPrices"
