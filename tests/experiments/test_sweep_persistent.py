"""Tests for the persistent-worker sweep engine.

Four properties the persistent pool must preserve, each with its own
section below:

1. **Differential determinism** — a persistent-worker sweep is
   bit-identical to the serial reference for every scheme, with
   chunking forced to 1, 3 and 8 cells per task, under both start
   methods, and under an injected fault schedule.  Chunk boundaries
   and worker scheduling must be unobservable in the results.
2. **Cache equivalence** — the per-worker scenario cache returns
   builds equivalent to a fresh construction for arbitrary
   (scenario, load, seed) keys, and reusing a cached scenario across
   cells leaks no per-run state between them (hypothesis-driven).
3. **Worker death** — a worker dying mid-chunk fails *only* the cell
   that killed it, as a structured :class:`CellResult`; its chunk-mates
   recover, and the merged trace keeps correct cell ordering.
4. **Progress** — callbacks fire exactly once per cell (never per
   chunk), and the CLI per-cell table matches the cell count.
"""

import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.runner import SCHEME_SPECS, SchemeSpec, run_scheme
from repro.experiments.scenarios import ScenarioSpec
from repro.experiments.sweep import (SCENARIO_CACHE_CAPACITY, SweepGrid,
                                     cached_scenario, clear_scenario_cache,
                                     run_sweep, scenario_cache_stats)
from repro.options import RunOptions
from repro.sim import summarize
from repro.telemetry import read_trace

from .test_sweep import assert_cells_identical, comparable


@pytest.fixture(autouse=True)
def _fresh_cache():
    """Each test starts and ends with an empty in-process cache."""
    clear_scenario_cache()
    yield
    clear_scenario_cache()


# -- differential determinism -------------------------------------------------

def test_persistent_sweep_bit_identical_for_all_schemes_and_chunkings():
    """All 10 schemes, serial vs persistent pool at chunk sizes 1/3/8."""
    grid = SweepGrid(schemes=sorted(SCHEME_SPECS), scenarios=["tiny"],
                     seeds=[0])
    serial = run_sweep(grid, options=RunOptions(workers=1))
    for chunk_size in (1, 3, 8):
        parallel = run_sweep(
            grid, options=RunOptions(workers=2, chunk_size=chunk_size))
        assert parallel.n_workers == 2
        assert_cells_identical(serial.cells, parallel.cells)


def test_persistent_sweep_bit_identical_under_faults_and_chunking():
    faulty = RunOptions(faults="sam:solver@2x1,ra:timeout@3x1",
                        fault_seed=7)
    grid = SweepGrid(schemes=["Pretium", "Pretium-NoMenu", "NoPrices"],
                     scenarios=["tiny"], seeds=[0, 1])
    serial = run_sweep(grid, options=faulty.replace(workers=1))
    for chunk_size in (1, 3):
        parallel = run_sweep(
            grid, options=faulty.replace(workers=2, chunk_size=chunk_size))
        assert_cells_identical(serial.cells, parallel.cells)


def test_explicit_start_methods_agree_with_serial():
    grid = SweepGrid(schemes=["Pretium", "NoPrices"], scenarios=["tiny"],
                     seeds=[0])
    serial = run_sweep(grid, options=RunOptions(workers=1))
    import multiprocessing
    methods = ["spawn"]
    if "forkserver" in multiprocessing.get_all_start_methods():
        methods.append("forkserver")
    for method in methods:
        parallel = run_sweep(
            grid, options=RunOptions(workers=2, worker_start=method))
        assert_cells_identical(serial.cells, parallel.cells)


def test_cache_reuse_is_flagged_but_unobservable_in_results():
    """Within one worker, later cells of a scenario column hit the cache
    (``cache_hit=True``) yet produce results identical to the serial
    path, which also reuses its in-process build."""
    grid = SweepGrid(schemes=["Pretium", "NoPrices", "OPT"],
                     scenarios=["tiny"], seeds=[0])
    # chunk_size=3 puts the whole column in one worker: 1 miss + 2 hits.
    result = run_sweep(grid, options=RunOptions(workers=2, chunk_size=3))
    assert result.ok
    hits = [cell.cache_hit for cell in result.cells]
    assert hits == [False, True, True]
    serial = run_sweep(grid, options=RunOptions(workers=1))
    assert_cells_identical(serial.cells, result.cells)


# -- scenario cache equivalence (hypothesis) ----------------------------------

@settings(max_examples=10, deadline=None)
@given(name=st.sampled_from(["tiny", "quick"]),
       load=st.sampled_from([0.5, 1.0, 2.0]),
       seed=st.integers(min_value=0, max_value=5))
def test_cached_scenario_equivalent_to_fresh_build(name, load, seed):
    spec = ScenarioSpec.of(name, load_factor=load)
    cached, _ = cached_scenario(spec, seed)
    again, hit = cached_scenario(spec, seed)
    assert again is cached and hit
    fresh = spec.build(seed=seed)
    assert fresh.workload.n_requests == cached.workload.n_requests
    assert fresh.workload.n_steps == cached.workload.n_steps
    assert ([(r.rid, r.src, r.dst, r.demand, r.value, r.arrival,
              r.deadline) for r in fresh.workload.requests] ==
            [(r.rid, r.src, r.dst, r.demand, r.value, r.arrival,
              r.deadline) for r in cached.workload.requests])
    assert ([(link.src, link.dst, link.capacity, link.metered)
             for link in fresh.topology.links] ==
            [(link.src, link.dst, link.capacity, link.metered)
             for link in cached.topology.links])


@settings(max_examples=6, deadline=None)
@given(scheme=st.sampled_from(["Pretium", "NoPrices", "VCGLike"]),
       seed=st.integers(min_value=0, max_value=3))
def test_cache_reuse_leaks_no_state_between_cells(scheme, seed):
    """Running a scheme twice against the *same cached build* must give
    identical results — any NetworkState (or other per-run mutation)
    leaking through the shared scenario would desynchronise the runs."""
    spec = ScenarioSpec.of("tiny", load_factor=2.0)
    scenario, _ = cached_scenario(spec, seed)
    first = run_scheme(scheme, scenario)
    second = run_scheme(scheme, scenario)
    assert dict(first.delivered) == dict(second.delivered)
    assert dict(first.payments) == dict(second.payments)
    assert np.array_equal(first.loads, second.loads)
    assert (comparable(summarize(first, scenario.cost_model)) ==
            comparable(summarize(second, scenario.cost_model)))
    # ... and the build handed out later is still the pristine one.
    fresh = spec.build(seed=seed)
    rerun = run_scheme(scheme, fresh)
    assert dict(rerun.delivered) == dict(first.delivered)


def test_cache_is_lru_bounded():
    for seed in range(SCENARIO_CACHE_CAPACITY + 2):
        cached_scenario(ScenarioSpec.of("tiny"), seed)
    stats = scenario_cache_stats()
    assert stats["size"] == SCENARIO_CACHE_CAPACITY
    assert stats["misses"] == SCENARIO_CACHE_CAPACITY + 2
    # seed 0 was evicted: re-requesting it is a miss, newest is a hit.
    _, hit = cached_scenario(ScenarioSpec.of("tiny"), 0)
    assert not hit
    _, hit = cached_scenario(ScenarioSpec.of("tiny"),
                             SCENARIO_CACHE_CAPACITY + 1)
    assert hit


# -- worker death -------------------------------------------------------------

class Kamikaze:
    """A scheme whose run kills its whole worker process.

    ``os._exit`` bypasses exception handling entirely — exactly what a
    segfault or OOM-kill looks like to the pool.  Module-level so it
    pickles by reference into spawn/forkserver workers.
    """

    name = "Kamikaze"

    def run(self, workload):
        os._exit(17)


KAMIKAZE = SchemeSpec("Kamikaze", Kamikaze)


def test_worker_death_fails_only_the_killer_cell():
    """6 cells in chunks of 3 across 2 workers; the killer is cell 1.
    Its chunk-mates (cells 0 and 2) and the other chunk must all
    recover; only cell 1 gets a structured death failure."""
    grid = SweepGrid(
        schemes=["NoPrices", KAMIKAZE, "OPT"],
        scenarios=["tiny"], seeds=[0, 1])
    seen = []
    result = run_sweep(
        grid, options=RunOptions(workers=2, chunk_size=3),
        progress=lambda done, total, cell: seen.append((done, cell.index)))
    assert [cell.ok for cell in result.cells] == [True, False, True,
                                                  True, False, True]
    for failed in result.failures:
        assert failed.scheme == "Kamikaze"
        assert failed.error == "BrokenProcessPool"
        assert "worker process died" in failed.detail
    # recovered chunk-mates match a clean serial run
    clean = run_sweep(SweepGrid(schemes=["NoPrices", "OPT"],
                                scenarios=["tiny"], seeds=[0, 1]),
                      options=RunOptions(workers=1))
    survivors = [cell for cell in result.cells if cell.ok]
    assert_cells_identical(clean.cells, survivors)
    # progress fired exactly once per cell, killer cells included
    assert sorted(done for done, _ in seen) == [1, 2, 3, 4, 5, 6]
    assert sorted(index for _, index in seen) == [0, 1, 2, 3, 4, 5]


def test_worker_death_keeps_merged_trace_order(tmp_path):
    trace = tmp_path / "sweep.jsonl"
    grid = SweepGrid(schemes=["NoPrices", KAMIKAZE, "Pretium"],
                     scenarios=["tiny"], seeds=[0])
    result = run_sweep(
        grid, options=RunOptions(workers=2, chunk_size=2, telemetry=trace))
    assert [cell.ok for cell in result.cells] == [True, False, True]
    # no shard files remain — including any torn shard of the dead cell
    assert list(tmp_path.glob("sweep.cell-*.jsonl")) == []
    events = read_trace(trace)
    cell_ids = [event["cell"] for event in events]
    assert cell_ids == sorted(cell_ids)
    assert set(cell_ids) == {0, 2}  # the killed cell contributed nothing


def test_every_cell_killing_its_worker_still_terminates():
    grid = SweepGrid(schemes=[KAMIKAZE], scenarios=["tiny"], seeds=[0, 1])
    result = run_sweep(grid, options=RunOptions(workers=2, chunk_size=1))
    assert [cell.ok for cell in result.cells] == [False, False]
    assert all("worker process died" in cell.detail
               for cell in result.cells)


# -- progress accounting ------------------------------------------------------

def test_progress_fires_exactly_once_per_cell_under_chunking():
    grid = SweepGrid(schemes=["Pretium", "NoPrices", "OPT"],
                     scenarios=["tiny"], seeds=[0, 1])
    for chunk_size in (1, 3, 8):
        calls = []
        result = run_sweep(
            grid, options=RunOptions(workers=2, chunk_size=chunk_size),
            progress=lambda done, total, cell:
            calls.append((done, total, cell.index)))
        assert result.ok
        assert [done for done, _, _ in calls] == [1, 2, 3, 4, 5, 6]
        assert all(total == 6 for _, total, _ in calls)
        assert sorted(index for _, _, index in calls) == [0, 1, 2, 3, 4, 5]


def test_cli_per_cell_table_counts_match(capsys):
    from repro.cli import main
    code = main(["sweep", "--schemes", "Pretium,NoPrices", "--scenario",
                 "tiny", "--seeds", "0,1", "--workers", "2",
                 "--chunk-size", "1"])
    assert code == 0
    out = capsys.readouterr().out
    table_rows = [line for line in out.splitlines()
                  if line.split()[:1] and line.split()[0].isdigit()
                  and "cell(s)" not in line]
    assert len(table_rows) == 4
    assert "4 cell(s), 0 failed, 2 worker(s)" in out
