"""Property tests on end-to-end accounting invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import PretiumController, PretiumConfig
from repro.costs import LinkCostModel
from repro.network import wan_topology
from repro.sim import metrics, simulate
from repro.traffic import NormalValues, build_workload


def run_random(seed: int, load: float):
    topology = wan_topology(n_nodes=8, n_regions=2, metered_fraction=0.25,
                            metered_cost=5.0, seed=seed)
    workload = build_workload(topology, n_days=1, steps_per_day=6,
                              load_factor=load,
                              values=NormalValues(1.0, 0.5),
                              max_requests_per_pair=6, seed=seed)
    controller = PretiumController(
        PretiumConfig(window=6, lookback=6))
    result = simulate(controller, workload)
    cost_model = LinkCostModel(topology, billing_window=6)
    return workload, controller, result, cost_model


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(min_value=0, max_value=100),
       load=st.floats(min_value=0.5, max_value=3.0))
def test_accounting_identities(seed, load):
    workload, controller, result, cost_model = run_random(seed, load)

    # welfare = profit + user surplus
    welfare = metrics.welfare(result, cost_model)
    assert welfare == pytest.approx(
        metrics.profit(result, cost_model)
        + metrics.user_surplus(result), abs=1e-6)

    # nobody is delivered more than they chose, nor pays for undelivered
    for contract in controller.contracts:
        delivered = result.delivered.get(contract.rid, 0.0)
        assert delivered <= contract.chosen + 1e-6
        assert result.payments[contract.rid] <= \
            contract.payment_for(contract.chosen) + 1e-9

    # guarantees are honoured (no faults injected here)
    for contract in controller.contracts:
        assert result.delivered.get(contract.rid, 0.0) >= \
            contract.guaranteed - 1e-5

    # per-(t, link) loads respect usable capacity
    assert np.all(result.loads <= controller.state.capacity * (1 + 1e-6)
                  + 1e-6)

    # the delivery log reconstructs delivered totals
    for rid, total in result.delivered.items():
        logged = sum(v for _, v in result.delivery_log.get(rid, []))
        assert logged == pytest.approx(total, abs=1e-9)


@settings(max_examples=4, deadline=None)
@given(seed=st.integers(min_value=0, max_value=50))
def test_user_surplus_nonnegative_per_user(seed):
    """Each customer's realised utility is nonnegative: they only buy
    menu points with marginal price <= value, and pay only for delivery."""
    workload, controller, result, _ = run_random(seed, 2.0)
    for contract in controller.contracts:
        request = contract.request
        delivered = min(result.delivered.get(contract.rid, 0.0),
                        request.demand)
        utility = request.value * delivered - \
            result.payments.get(contract.rid, 0.0)
        assert utility >= -1e-6
