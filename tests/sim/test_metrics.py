"""Tests for evaluation metrics."""

import numpy as np
import pytest

from repro.core import ByteRequest
from repro.costs import LinkCostModel
from repro.network import Topology
from repro.sim import RunResult
from repro.sim import metrics
from repro.traffic import Workload


def make_result():
    topo = Topology()
    topo.add_link("a", "b", 10.0, metered=True, cost_per_unit=1.0)
    topo.add_link("b", "c", 20.0)
    requests = [
        ByteRequest(0, "a", "b", 4.0, 0, 0, 3, 2.0),   # fully served
        ByteRequest(1, "a", "b", 6.0, 0, 0, 3, 1.0),   # half served
        ByteRequest(2, "a", "c", 5.0, 1, 1, 3, 3.0),   # declined
    ]
    wl = Workload(topo, requests, n_steps=4, steps_per_day=4)
    loads = np.zeros((4, 2))
    loads[:, 0] = [4.0, 3.0, 0.0, 0.0]
    result = RunResult(
        workload=wl, scheme_name="test", loads=loads,
        delivered={0: 4.0, 1: 3.0},
        payments={0: 2.0, 1: 1.5},
        chosen={0: 4.0, 1: 3.0})
    cm = LinkCostModel(topo, billing_window=4)
    return result, cm


def test_total_value():
    result, _ = make_result()
    assert metrics.total_value(result) == pytest.approx(4 * 2 + 3 * 1)


def test_total_value_caps_at_demand():
    result, _ = make_result()
    result.delivered[0] = 100.0  # overshoot must not add value
    assert metrics.total_value(result) == pytest.approx(4 * 2 + 3 * 1)


def test_welfare_subtracts_true_cost():
    result, cm = make_result()
    true_cost = cm.true_cost(result.loads)
    assert true_cost > 0
    assert metrics.welfare(result, cm) == pytest.approx(11.0 - true_cost)


def test_profit_and_surplus_sum_to_welfare():
    result, cm = make_result()
    assert metrics.profit(result, cm) + metrics.user_surplus(result) == \
        pytest.approx(metrics.welfare(result, cm))


def test_completion_fraction_demand():
    result, _ = make_result()
    assert metrics.completion_fraction(result, "demand") == \
        pytest.approx(1 / 3)


def test_completion_fraction_chosen():
    result, _ = make_result()
    # both admitted requests delivered their chosen volume
    assert metrics.completion_fraction(result, "chosen") == 1.0


def test_completion_fraction_validation():
    result, _ = make_result()
    with pytest.raises(ValueError):
        metrics.completion_fraction(result, "bogus")


def test_completion_empty_workload():
    topo = Topology()
    topo.add_link("a", "b", 1.0)
    wl = Workload(topo, [], n_steps=1, steps_per_day=1)
    result = RunResult(wl, "x", np.zeros((1, 1)), {}, {}, {})
    assert metrics.completion_fraction(result) == 0.0
    assert metrics.admitted_fraction(result) == 0.0


def test_link_utilization_percentiles():
    result, _ = make_result()
    p100 = metrics.link_utilization_percentiles(result, 100)
    assert p100[0] == pytest.approx(0.4)   # 4/10
    assert p100[1] == 0.0


def test_value_by_bucket():
    result, _ = make_result()
    edges, totals = metrics.value_by_bucket(result, [0.0, 1.5, 2.5, 4.0])
    assert totals[0] == pytest.approx(3.0)   # value-1 request: 3 * 1
    assert totals[1] == pytest.approx(8.0)   # value-2 request: 4 * 2
    assert totals[2] == 0.0
    with pytest.raises(ValueError):
        metrics.value_by_bucket(result, [1.0])


def test_value_by_bucket_clips_out_of_range():
    result, _ = make_result()
    edges, totals = metrics.value_by_bucket(result, [1.5, 1.8])
    # the value-2.0 request clips into the last (only) bucket;
    # the value-1.0 request clips into the first
    assert totals[0] == pytest.approx(3.0 + 8.0)


def test_admission_price_points():
    result, _ = make_result()
    points = dict(metrics.admission_price_points(result))
    assert points[2.0] == pytest.approx(0.5)    # paid 2.0 for 4 units
    assert points[1.0] == pytest.approx(0.5)    # paid 1.5 for 3 units
    assert len(points) == 2                      # declined request skipped


def test_admitted_fraction():
    result, _ = make_result()
    assert metrics.admitted_fraction(result) == pytest.approx(2 / 3)


def test_relative():
    assert metrics.relative(4.0, 2.0) == 2.0
    assert metrics.relative(0.0, 0.0) == 1.0
    assert metrics.relative(1.0, 0.0) == float("inf")


def test_cdf_points():
    xs, fs = metrics.cdf_points(np.array([3.0, 1.0, 2.0]))
    assert list(xs) == [1.0, 2.0, 3.0]
    assert list(fs) == pytest.approx([1 / 3, 2 / 3, 1.0])
    xs, fs = metrics.cdf_points(np.array([]))
    assert xs.size == 0
