"""Tests for run-summary serialisation."""

import numpy as np
import pytest

from repro.core import ByteRequest
from repro.costs import LinkCostModel
from repro.network import Topology
from repro.sim import (ModuleRuntimes, RunResult, load_summary, save_summary,
                       summarize)
from repro.traffic import Workload


def make_result():
    topo = Topology()
    topo.add_link("a", "b", 10.0, metered=True, cost_per_unit=1.0)
    requests = [ByteRequest(0, "a", "b", 4.0, 0, 0, 3, 2.0)]
    wl = Workload(topo, requests, n_steps=4, steps_per_day=4,
                  load_factor=2.0, description="unit")
    loads = np.zeros((4, 1))
    loads[0, 0] = 4.0
    runtimes = ModuleRuntimes(ra=[0.1, 0.2], sam=[0.3], pc=[1.0])
    return RunResult(wl, "test", loads, {0: 4.0}, {0: 2.0}, {0: 4.0},
                     extras={"runtimes": runtimes}), \
        LinkCostModel(topo, billing_window=4)


def test_summarize_fields():
    result, cm = make_result()
    record = summarize(result, cm)
    assert record["scheme"] == "test"
    assert record["workload"] == "unit"
    assert record["n_requests"] == 1
    assert record["load_factor"] == 2.0
    assert record["total_value"] == pytest.approx(8.0)
    assert record["welfare"] == pytest.approx(8.0 - record["true_cost"])
    assert record["profit"] + record["user_surplus"] == \
        pytest.approx(record["welfare"])
    assert record["completion_demand"] == 1.0
    assert record["runtimes"]["RA"]["count"] == 2


def test_save_and_load_roundtrip(tmp_path):
    result, cm = make_result()
    record = summarize(result, cm)
    path = tmp_path / "summary.json"
    save_summary(record, path)
    loaded = load_summary(path)
    assert loaded["welfare"] == pytest.approx(record["welfare"])
    assert loaded["scheme"] == "test"


def test_save_coerces_numpy_types(tmp_path):
    path = tmp_path / "np.json"
    save_summary({"a": np.float64(1.5), "b": np.int64(2),
                  "c": np.array([1.0, 2.0])}, path)
    loaded = load_summary(path)
    assert loaded == {"a": 1.5, "b": 2, "c": [1.0, 2.0]}


def test_save_rejects_unserialisable(tmp_path):
    """Regression: an unknown type must raise, never serialise as null."""
    path = tmp_path / "bad.json"
    with pytest.raises(TypeError, match="cannot serialise object"):
        save_summary({"bad": object()}, path)
    # in particular, no file with a silent null in it was produced
    assert not path.exists() or "null" not in path.read_text()


def test_save_rejects_nested_unserialisable(tmp_path):
    class Opaque:
        pass

    with pytest.raises(TypeError, match="Opaque"):
        save_summary({"runtimes": {"RA": Opaque()}}, tmp_path / "bad.json")


def test_save_coerces_numpy_bool(tmp_path):
    path = tmp_path / "b.json"
    save_summary({"flag": np.bool_(True)}, path)
    assert load_summary(path) == {"flag": True}
