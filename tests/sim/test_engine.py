"""Tests for the simulation engine: protocol, accounting, feasibility."""

import numpy as np
import pytest

from repro.core import ByteRequest, Transmission
from repro.network import line_network
from repro.sim import CapacityViolation, ModuleRuntimes, RunResult, simulate
from repro.traffic import Workload


class ScriptedScheme:
    """Deterministic scheme for engine testing."""

    name = "Scripted"

    def __init__(self, script=None, contracts=None):
        self.script = script or {}
        self.contracts = contracts or []
        self.events = []

    def begin(self, workload):
        self.events.append("begin")

    def window_start(self, t):
        self.events.append(("window", t))

    def arrival(self, request, t):
        self.events.append(("arrival", request.rid, t))

    def step(self, t, delivered, loads):
        self.events.append(("step", t))
        return self.script.get(t, [])


def workload(requests=None, n_steps=3):
    topo = line_network(2, capacity=10.0)
    requests = requests if requests is not None else [
        ByteRequest(0, "n0", "n1", 5.0, 0, 0, 2, 1.0),
        ByteRequest(1, "n0", "n1", 5.0, 1, 1, 2, 1.0),
    ]
    return Workload(topo, requests, n_steps=n_steps, steps_per_day=3)


def test_engine_calls_protocol_in_order():
    scheme = ScriptedScheme()
    simulate(scheme, workload())
    assert scheme.events[0] == "begin"
    assert scheme.events[1] == ("window", 0)
    assert ("arrival", 0, 0) in scheme.events
    assert ("arrival", 1, 1) in scheme.events
    # arrival happens after window_start and before step of the same t
    i_window = scheme.events.index(("window", 1))
    i_arrival = scheme.events.index(("arrival", 1, 1))
    i_step = scheme.events.index(("step", 1))
    assert i_window < i_arrival < i_step


def test_engine_accumulates_loads_and_delivered():
    script = {0: [Transmission(0, (0,), 0, 3.0)],
              1: [Transmission(0, (0,), 1, 2.0),
                  Transmission(1, (0,), 1, 4.0)]}
    result = simulate(ScriptedScheme(script), workload())
    assert result.loads[0, 0] == 3.0
    assert result.loads[1, 0] == 6.0
    assert result.delivered[0] == 5.0
    assert result.delivered[1] == 4.0
    assert result.total_delivered == 9.0


def test_engine_rejects_overcapacity():
    script = {0: [Transmission(0, (0,), 0, 11.0)]}
    with pytest.raises(CapacityViolation):
        simulate(ScriptedScheme(script), workload())


class OverSchedulingScheme(ScriptedScheme):
    """Deliberately schedules 2x the link capacity at every step."""

    name = "OverScheduler"

    def step(self, t, delivered, loads):
        return [Transmission(0, (0,), t, 20.0)]


def test_overscheduling_scheme_raises_with_diagnostics():
    with pytest.raises(CapacityViolation) as excinfo:
        simulate(OverSchedulingScheme(), workload())
    message = str(excinfo.value)
    # the message names the link, step, offending load and the capacity
    assert "link 0" in message
    assert "step 0" in message
    assert "20.0" in message
    assert "10.0" in message


def test_capacity_check_leaves_state_untouched_on_failure():
    script = {0: [Transmission(0, (0,), 0, 4.0),
                  Transmission(1, (0,), 0, 11.0)]}
    with pytest.raises(CapacityViolation):
        simulate(ScriptedScheme(script), workload())


def test_engine_rejects_cumulative_overcapacity():
    script = {0: [Transmission(0, (0,), 0, 6.0),
                  Transmission(1, (0,), 0, 6.0)]}
    with pytest.raises(CapacityViolation):
        simulate(ScriptedScheme(script), workload())


def test_engine_rejects_wrong_timestep():
    script = {0: [Transmission(0, (0,), 2, 1.0)]}
    with pytest.raises(CapacityViolation):
        simulate(ScriptedScheme(script), workload())


def test_engine_ignores_zero_volume():
    script = {0: [Transmission(0, (0,), 0, 0.0)]}
    result = simulate(ScriptedScheme(script), workload())
    assert result.delivered.get(0, 0.0) == 0.0


def test_runtimes_recorded():
    result = simulate(ScriptedScheme(), workload())
    runtimes = result.extras["runtimes"]
    summary = runtimes.summary()
    assert summary["RA"]["count"] == 2
    assert summary["SAM"]["count"] == 3
    assert "median" in summary["SAM"] and "p95" in summary["SAM"]


def test_module_runtimes_summary_empty():
    assert ModuleRuntimes().summary() == {}


def test_request_by_id():
    result = simulate(ScriptedScheme(), workload())
    assert result.request_by_id(1).rid == 1
    with pytest.raises(KeyError):
        result.request_by_id(99)


def test_scheme_name_defaults_to_class():
    class Anon(ScriptedScheme):
        name = None

    anon = Anon()
    del anon.__class__.name
    result = simulate(anon, workload())
    assert result.scheme_name in ("Scripted", "Anon")
