"""Property-based tests of the degraded (fallback) quoting path.

The fallback menu from :meth:`RequestAdmission.quote_degraded` is what
customers see while the primary quoting machinery is down, so it must
keep the menu invariants that settlement and the truthfulness argument
rely on: convexity, non-negative prices, guarantees bounded by demand
and capacity.  (Deadline monotonicity is deliberately *not* asserted:
the fallback picks one route by cheapest-step price, and a longer
deadline can flip that route choice.)
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ByteRequest, NetworkState, PretiumConfig, \
    RequestAdmission
from repro.network import wan_topology


def build_ra(seed: int, n_steps: int = 8):
    """A small WAN with randomised prices and partial reservations."""
    rng = np.random.default_rng(seed)
    topology = wan_topology(n_nodes=8, n_regions=2, seed=seed)
    config = PretiumConfig(window=n_steps, lookback=n_steps,
                           initial_price=0.1)
    state = NetworkState(topology, n_steps, config)
    state.prices[:] = rng.uniform(0.01, 2.0, size=state.prices.shape)
    for _ in range(10):
        link = int(rng.integers(0, topology.num_links))
        t = int(rng.integers(0, n_steps))
        state.reserved[t, link] = float(
            rng.uniform(0, state.capacity[t, link]))
    return topology, state, RequestAdmission(state)


def random_pair(topology, rng):
    nodes = topology.nodes
    i, j = rng.choice(len(nodes), size=2, replace=False)
    return nodes[int(i)], nodes[int(j)]


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10 ** 6))
def test_degraded_menus_are_convex_with_nonnegative_prices(seed):
    rng = np.random.default_rng(seed)
    topology, state, ra = build_ra(seed)
    src, dst = random_pair(topology, rng)
    request = ByteRequest(1, src, dst, 200.0, 0, 0, 5, 1.0)
    menu = ra.quote_degraded(request, now=0)
    prices = [segment.unit_price for segment in menu.segments]
    assert prices == sorted(prices)
    assert all(price >= 0.0 for price in prices)
    assert all(segment.quantity > 0.0 for segment in menu.segments)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10 ** 6),
       demand=st.floats(min_value=0.5, max_value=5000.0))
def test_degraded_guarantee_bounded_by_demand_and_capacity(seed, demand):
    rng = np.random.default_rng(seed)
    topology, state, ra = build_ra(seed)
    src, dst = random_pair(topology, rng)
    request = ByteRequest(1, src, dst, demand, 0, 0, 7, 1.0)
    menu = ra.quote_degraded(request, now=0)
    assert menu.max_guaranteed <= demand + 1e-6
    # upper bound: total residual out-capacity of the source
    out_capacity = sum(
        max(0.0, state.capacity[t, link.index]
            - state.reserved[t, link.index])
        for link in topology.out_links(src) for t in range(8))
    assert menu.max_guaranteed <= out_capacity + 1e-6


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10 ** 6),
       fraction=st.floats(min_value=0.1, max_value=0.9))
def test_degraded_price_curve_is_a_demand_prefix(seed, fraction):
    """Quoting a smaller demand yields a prefix of the same curve.

    The fallback sells the same cheapest-first steps whatever the
    demand, so p_small(x) == p_large(x) for x within the small demand —
    a customer cannot game the degraded window by shrinking requests.
    """
    rng = np.random.default_rng(seed)
    topology, state, ra = build_ra(seed)
    src, dst = random_pair(topology, rng)
    large = ByteRequest(1, src, dst, 400.0, 0, 0, 6, 1.0)
    small = ByteRequest(2, src, dst, 400.0 * fraction, 0, 0, 6, 1.0)
    menu_large = ra.quote_degraded(large, now=0)
    menu_small = ra.quote_degraded(small, now=0)
    assert menu_small.max_guaranteed <= menu_large.max_guaranteed + 1e-9
    for x in np.linspace(0.0, menu_small.max_guaranteed, 7):
        assert abs(menu_small.price(float(x))
                   - menu_large.price(float(x))) <= 1e-9


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10 ** 6))
def test_degraded_admission_respects_capacity(seed):
    """Admitting along degraded menus never over-reserves a link."""
    rng = np.random.default_rng(seed)
    topology, state, ra = build_ra(seed)
    nodes = topology.nodes
    for rid in range(1, 6):
        i, j = rng.choice(len(nodes), size=2, replace=False)
        request = ByteRequest(rid, nodes[int(i)], nodes[int(j)],
                              float(rng.uniform(10.0, 500.0)), 0, 0, 7, 1.0)
        menu = ra.quote_degraded(request, now=0)
        chosen = min(request.demand, menu.max_guaranteed)
        if chosen > 1e-9:
            ra.admit(request, menu, chosen, now=0)
    assert np.all(state.reserved <= state.capacity + 1e-6)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10 ** 6))
def test_degraded_and_primary_settle_identically(seed):
    """Both quote paths produce menus the same settlement code accepts."""
    rng = np.random.default_rng(seed)
    topology, state, ra = build_ra(seed)
    src, dst = random_pair(topology, rng)
    request = ByteRequest(1, src, dst, 150.0, 0, 0, 5, 1.0)
    for menu in (ra.quote(request, now=0),
                 ra.quote_degraded(request, now=0)):
        x = min(request.demand, menu.max_guaranteed)
        # price() is finite, monotone and zero at zero on both paths
        assert menu.price(0.0) == 0.0
        assert menu.price(x) >= 0.0
        assert menu.price(x) >= menu.price(x * 0.5) - 1e-9
