"""Unit tests for the fault-spec grammar and the injector itself."""

import pytest

from repro.faults import (FaultInjector, FaultRule, FaultSpecError,
                          get_injector, is_injected, parse_fault_spec,
                          use_injector)
from repro.lp import InfeasibleError, SolverError, SolverTimeout


# -- spec parsing -----------------------------------------------------------

def test_parse_single_clause():
    (rule,) = parse_fault_spec("sam:solver@5")
    assert rule == FaultRule(module="sam", kind="solver", start=5, end=5)


def test_parse_count_suffix():
    (rule,) = parse_fault_spec("sam:solver@5x1")
    assert rule.limit == 1
    assert (rule.start, rule.end) == (5, 5)


def test_parse_step_range():
    (rule,) = parse_fault_spec("ra:infeasible@3-6")
    assert (rule.start, rule.end) == (3, 6)


def test_parse_wildcards_and_probability():
    rules = parse_fault_spec("*:solver@p0.25, pc:timeout@*, ra:solver")
    assert rules[0].module == "*"
    assert rules[0].probability == pytest.approx(0.25)
    # '@*' and no '@' both mean "any step"
    assert rules[1].start is None and rules[1].probability is None
    assert rules[2].start is None


def test_parse_multiple_clauses_with_whitespace():
    rules = parse_fault_spec(" sam:solver@5x1 , pc:timeout@24 ")
    assert [r.module for r in rules] == ["sam", "pc"]
    assert [r.kind for r in rules] == ["solver", "timeout"]


@pytest.mark.parametrize("bad", [
    "", "   ", ",",                 # no clauses at all
    "sam",                          # missing kind
    "sam:explode@5",                # unknown kind
    "dns:solver@5",                 # unknown module
    "sam:solver@",                  # dangling '@'
    "sam:solver@5-",                # dangling range
    "sam:solver@6-5",               # empty range
    "sam:solver@p1.5",              # probability out of [0, 1]
    "sam:solver@5x",                # dangling count
    "sam solver@5",                 # wrong separator
])
def test_parse_rejects_malformed_specs(bad):
    with pytest.raises(FaultSpecError):
        parse_fault_spec(bad)


def test_fault_spec_error_is_a_value_error():
    # PretiumConfig validation and the CLI both rely on this.
    assert issubclass(FaultSpecError, ValueError)


# -- firing semantics -------------------------------------------------------

def test_check_raises_configured_kind_at_matching_point():
    cases = [("solver", SolverError), ("infeasible", InfeasibleError),
             ("timeout", SolverTimeout)]
    for kind, exc_type in cases:
        injector = FaultInjector.from_spec(f"sam:{kind}@5")
        injector.check("sam", 4)        # wrong step: no fault
        injector.check("ra", 5)         # wrong module: no fault
        with pytest.raises(exc_type) as excinfo:
            injector.check("sam", 5)
        assert is_injected(excinfo.value)
        assert injector.injections == [("sam", 5, kind)]


def test_wildcard_module_hits_every_module():
    injector = FaultInjector.from_spec("*:solver@2")
    for module in ("ra", "sam", "pc"):
        with pytest.raises(SolverError):
            injector.check(module, 2)


def test_limit_caps_injection_count():
    injector = FaultInjector.from_spec("sam:solver@5x2")
    for _ in range(2):
        with pytest.raises(SolverError):
            injector.check("sam", 5)
    injector.check("sam", 5)  # third attempt passes through
    assert len(injector.injections) == 2


def test_unlimited_rule_fails_every_attempt():
    injector = FaultInjector.from_spec("sam:solver@5")
    for _ in range(4):
        with pytest.raises(SolverError):
            injector.check("sam", 5)
    assert len(injector.injections) == 4


def test_probabilistic_rule_is_deterministic_per_seed():
    def schedule(seed):
        injector = FaultInjector.from_spec("sam:solver@p0.5", seed=seed)
        fired = []
        for step in range(50):
            try:
                injector.check("sam", step)
            except SolverError:
                fired.append(step)
        return fired

    first, second = schedule(7), schedule(7)
    assert first == second          # same seed -> same fault schedule
    assert 5 < len(first) < 45      # and it actually is probabilistic
    assert schedule(8) != first     # different seed -> different draws


def test_reset_replays_the_identical_schedule():
    injector = FaultInjector.from_spec("sam:solver@3x1,ra:solver@p0.5",
                                       seed=3)
    def drain():
        fired = []
        for step in range(20):
            for module in ("ra", "sam"):
                try:
                    injector.check(module, step)
                except SolverError:
                    fired.append((module, step))
        return fired

    first = drain()
    second = drain()
    assert ("sam", 3) in first
    assert ("sam", 3) not in second  # x1 rule exhausted
    assert second != first           # rng sequence moved on
    injector.reset()
    assert injector.injections == []
    assert drain() == first


def test_is_injected_distinguishes_genuine_failures():
    assert not is_injected(SolverError("real backend failure"))
    assert not is_injected(ValueError("not even an LP error"))


def test_use_injector_scopes_and_restores():
    injector = FaultInjector.from_spec("sam:solver@1")
    default = get_injector()
    with use_injector(injector) as active:
        assert active is injector
        assert get_injector() is injector
        with pytest.raises(SolverError):
            get_injector().check("sam", 1)
    assert get_injector() is default
    get_injector().check("sam", 1)  # default injector never fires
