"""Chaos suite: end-to-end runs with faults at every module boundary.

Every (module, fault-kind) pair is injected at a representative
timestep of the two-day chaos world and the full Pretium stack must
(1) complete the run, (2) honour every guarantee it sold before the
fault, (3) keep the accounting invariants, and (4) leave the expected
degradation trail in the metrics registry and run extras.
"""

import numpy as np
import pytest

from repro.sim import summarize
from repro.telemetry import InMemoryCollector, audit_events, unwaived

from .conftest import (assert_accounting_invariants, assert_guarantees_met,
                       run_with_faults)


def assert_books_balance(collector, result, scenario, expect_degraded):
    """Replay the run's ledger through the invariant auditor.

    Byte conservation must hold unconditionally; guarantee misses are
    acceptable only when the ledger carries the DEGRADED events that
    explain them (``expect_degraded``); nothing else may be flagged.
    """
    summary = summarize(result, scenario.cost_model)
    findings = audit_events(collector.events, summary=summary)
    conservation = [f for f in findings if f.check == "byte_conservation"]
    assert not conservation, conservation
    failures = unwaived(findings)
    assert not failures, failures
    if not expect_degraded:
        assert findings == [], findings

#: Representative injection step per module: RA during the first-day
#: arrival wave, SAM mid-day, PC at the day-2 window boundary (t=8) —
#: the only step where the price recomputation actually runs.
FAULT_STEPS = {"ra": 2, "sam": 4, "pc": 8}

GRID = [(module, kind)
        for module in ("ra", "sam", "pc")
        for kind in ("solver", "infeasible", "timeout")]


@pytest.fixture(scope="module")
def clean_run(chaos_scenario):
    return run_with_faults(chaos_scenario, None, trace_tag="clean")


@pytest.mark.parametrize("module,kind", GRID,
                         ids=[f"{m}-{k}" for m, k in GRID])
def test_fault_at_every_module_degrades_gracefully(chaos_scenario, module,
                                                   kind):
    step = FAULT_STEPS[module]
    spec = f"{module}:{kind}@{step}"
    collector = InMemoryCollector()
    controller, result, snapshot = run_with_faults(
        chaos_scenario, spec, trace_tag="grid", collector=collector)

    # The run completed and still did real work.
    assert result.loads.shape[0] == chaos_scenario.workload.n_steps
    assert controller.contracts
    assert result.total_delivered > 0

    # Guarantees sold before the fault step are all honoured.
    assert_guarantees_met(controller, result, admitted_before=step)
    assert_accounting_invariants(controller, result, chaos_scenario)

    # The replayed ledger balances: bytes conserved, and any guarantee
    # miss is explained by the DEGRADED events this fault produced.
    assert_books_balance(collector, result, chaos_scenario,
                         expect_degraded=True)

    # The injector hit, and the module left its degradation trail.
    assert snapshot[f"faults.injected.{module}"] > 0
    assert snapshot[f"resilience.fallbacks.{module}"] > 0
    if module == "pc":
        assert snapshot["resilience.stale_windows.pc"] > 0
        assert snapshot["resilience.pc.staleness"] >= 1
    if kind == "infeasible":
        # Deterministic infeasibility is never retried.
        assert f"resilience.retries.{module}" not in snapshot
    elif module in ("sam", "pc"):
        # Transient faults burn the retry budget before falling back.
        assert snapshot[f"resilience.retries.{module}"] > 0
        assert snapshot[f"resilience.exhausted.{module}"] > 0

    # The structured degradation events point at the faulted module/step.
    events = result.extras["degradation"]
    assert events
    assert {e["module"] for e in events} == {module}
    assert all(e["step"] == step for e in events)


def test_sam_fault_guarantees_hold_for_all_contracts(chaos_scenario):
    # A mid-run SAM outage must not cost *any* guarantee: the replayed
    # plan keeps every reservation's capacity backing.
    controller, result, _ = run_with_faults(chaos_scenario, "sam:solver@4",
                                            trace_tag="sam_all")
    assert_guarantees_met(controller, result)


def test_clean_run_ledger_audits_with_zero_findings(chaos_scenario):
    # Without faults the auditor must find nothing at all — no waivers,
    # no tolerated misses: the books simply balance.
    collector = InMemoryCollector()
    _, result, _ = run_with_faults(chaos_scenario, None,
                                   trace_tag="clean_audit",
                                   collector=collector)
    assert_books_balance(collector, result, chaos_scenario,
                         expect_degraded=False)


def test_faults_in_all_modules_at_once(chaos_scenario):
    spec = "ra:solver@2,sam:solver@4,pc:timeout@8"
    collector = InMemoryCollector()
    controller, result, snapshot = run_with_faults(chaos_scenario, spec,
                                                   trace_tag="all",
                                                   collector=collector)
    assert_guarantees_met(controller, result, admitted_before=2)
    assert_accounting_invariants(controller, result, chaos_scenario)
    assert_books_balance(collector, result, chaos_scenario,
                         expect_degraded=True)
    for module in ("ra", "sam", "pc"):
        assert snapshot[f"faults.injected.{module}"] > 0
        assert snapshot[f"resilience.fallbacks.{module}"] > 0
    assert {e["module"] for e in result.extras["degradation"]} == \
        {"ra", "sam", "pc"}


def test_retry_recovery_is_invisible(chaos_scenario, clean_run):
    # With solver_retries=1, an x1 fault is absorbed by the retry: the
    # run must be byte-identical to a clean one (modulo the retry
    # counters) — no fallback, no degradation events.
    _, clean_result, _ = clean_run
    controller, result, snapshot = run_with_faults(
        chaos_scenario, "sam:solver@4x1", trace_tag="retry")
    assert snapshot["resilience.retries.sam"] == 1
    assert "resilience.fallbacks.sam" not in snapshot
    assert "degradation" not in result.extras
    assert result.delivered == pytest.approx(clean_result.delivered)
    assert result.payments == pytest.approx(clean_result.payments)
    assert np.allclose(result.loads, clean_result.loads)


def test_fault_runs_are_deterministic(chaos_scenario):
    spec = "sam:solver@4,ra:infeasible@2"
    _, first, _ = run_with_faults(chaos_scenario, spec, trace_tag="det1")
    _, second, _ = run_with_faults(chaos_scenario, spec, trace_tag="det2")
    assert first.delivered == pytest.approx(second.delivered)
    assert first.payments == pytest.approx(second.payments)
    assert np.allclose(first.loads, second.loads)
    assert first.extras["degradation"] == second.extras["degradation"]


def test_summary_surfaces_degradation_counts(chaos_scenario, clean_run):
    _, result, _ = run_with_faults(chaos_scenario, "sam:solver@4",
                                   trace_tag="summary")
    record = summarize(result, chaos_scenario.cost_model)
    assert record["degraded_steps"] >= 1
    assert record["degraded_by_module"].get("sam", 0) >= 1

    _, clean_result, _ = clean_run
    clean_record = summarize(clean_result, chaos_scenario.cost_model)
    assert "degraded_steps" not in clean_record


def test_infeasible_sam_fault_drops_guarantee_rows(chaos_scenario):
    # First attempt (guarantees enforced) hits the injected
    # InfeasibleError; SAM records the drop before retrying best-effort.
    _, _, snapshot = run_with_faults(chaos_scenario, "sam:infeasible@4",
                                     trace_tag="drops")
    assert snapshot["resilience.guarantee_drops.sam"] >= 1
