"""Differential tests: fast and reference paths degrade identically.

The heap-based RA quoting and COO LP assembly are pure optimisations of
the scan/expression reference paths, so under the *same deterministic
fault schedule* both stacks must produce the same contracts, the same
deliveries and the same degradation trail — otherwise a fault could
expose a divergence the clean-path equivalence tests never see.
"""

import numpy as np
import pytest

from repro.sim import simulate
from repro.telemetry import MetricsRegistry, use_registry

from repro.core import PretiumController

from .conftest import chaos_config

FAST = {"quote_path": "heap", "lp_builder": "coo"}
REFERENCE = {"quote_path": "scan", "lp_builder": "expr"}


def run_variant(scenario, spec, overrides):
    controller = PretiumController(chaos_config(spec, **overrides))
    with use_registry(MetricsRegistry()) as registry:
        result = simulate(controller, scenario.workload)
        snapshot = registry.snapshot()
    return controller, result, snapshot


@pytest.mark.parametrize("spec", [
    "sam:solver@4",                      # SAM plan replay
    "ra:infeasible@2",                   # degraded quoting
    "pc:timeout@8",                      # stale prices
    "ra:solver@2,sam:solver@4,pc:solver@8",  # everything at once
], ids=["sam", "ra", "pc", "all"])
def test_fast_and_reference_paths_degrade_identically(chaos_scenario, spec):
    _, fast, fast_metrics = run_variant(chaos_scenario, spec, FAST)
    _, ref, ref_metrics = run_variant(chaos_scenario, spec, REFERENCE)

    assert set(fast.delivered) == set(ref.delivered)
    for rid in fast.delivered:
        assert fast.delivered[rid] == pytest.approx(ref.delivered[rid]), rid
    for rid in fast.payments:
        assert fast.payments[rid] == pytest.approx(ref.payments[rid]), rid
    assert np.allclose(fast.loads, ref.loads)

    # The degradation trail matches event for event...
    assert fast.extras.get("degradation", []) == \
        ref.extras.get("degradation", [])
    # ...and so do the fault/resilience counters (runtime histograms and
    # LP-size metrics legitimately differ between the two stacks).
    prefixes = ("faults.", "resilience.", "engine.failures")
    fast_counts = {k: v for k, v in fast_metrics.items()
                   if k.startswith(prefixes)}
    ref_counts = {k: v for k, v in ref_metrics.items()
                  if k.startswith(prefixes)}
    assert fast_counts == ref_counts
    assert fast_counts  # the schedule really did inject something


def test_probabilistic_schedule_is_shared_across_variants(chaos_scenario):
    # A seeded probabilistic rule draws the same schedule in both stacks
    # because injection points are identical call sites.
    spec = "sam:solver@p0.3"
    _, fast, fast_metrics = run_variant(chaos_scenario, spec,
                                        dict(FAST, fault_seed=11))
    _, ref, ref_metrics = run_variant(chaos_scenario, spec,
                                      dict(REFERENCE, fault_seed=11))
    assert fast_metrics.get("faults.injected.sam", 0) == \
        ref_metrics.get("faults.injected.sam", 0) > 0
    assert fast.extras.get("degradation", []) == \
        ref.extras.get("degradation", [])
    assert np.allclose(fast.loads, ref.loads)
