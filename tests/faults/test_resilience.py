"""Unit tests for retry-with-backoff and solver budgets."""

import pytest

from repro.faults import (MAX_BACKOFF, FaultInjector, RetryPolicy,
                          resilient_solve)
from repro.lp import InfeasibleError, Model, SolverError, SolverTimeout
from repro.telemetry import MetricsRegistry, use_registry


def tiny_model() -> Model:
    m = Model(sense="min", name="tiny")
    x = m.add_variable("x", lb=0.0)
    m.add_constraint(x >= 2.0)
    m.set_objective(x.to_expr())
    return m


def test_retry_recovers_after_limited_fault():
    injector = FaultInjector.from_spec("sam:solver@5x1")
    with use_registry(MetricsRegistry()) as registry:
        solution = resilient_solve(tiny_model(), "sam", 5,
                                   policy=RetryPolicy(retries=2),
                                   injector=injector)
        assert solution.objective == pytest.approx(2.0)
        assert registry.counter("resilience.retries").value == 1
        assert registry.counter("resilience.retries.sam").value == 1
        assert "resilience.exhausted.sam" not in registry


def test_unlimited_fault_exhausts_retries():
    injector = FaultInjector.from_spec("sam:solver@5")
    with use_registry(MetricsRegistry()) as registry:
        with pytest.raises(SolverError):
            resilient_solve(tiny_model(), "sam", 5,
                            policy=RetryPolicy(retries=2),
                            injector=injector)
        # first attempt + 2 retries, all injected
        assert len(injector.injections) == 3
        assert registry.counter("resilience.retries.sam").value == 2
        assert registry.counter("resilience.exhausted.sam").value == 1


def test_timeout_faults_are_retried_like_solver_faults():
    injector = FaultInjector.from_spec("pc:timeout@8x1")
    with use_registry(MetricsRegistry()) as registry:
        solution = resilient_solve(tiny_model(), "pc", 8,
                                   policy=RetryPolicy(retries=1),
                                   injector=injector)
        assert solution.objective == pytest.approx(2.0)
        assert registry.counter("resilience.retries.pc").value == 1


def test_infeasible_faults_are_never_retried():
    injector = FaultInjector.from_spec("sam:infeasible@5x3")
    with use_registry(MetricsRegistry()) as registry:
        with pytest.raises(InfeasibleError):
            resilient_solve(tiny_model(), "sam", 5,
                            policy=RetryPolicy(retries=5),
                            injector=injector)
        # one attempt, zero retries: a deterministic LP stays infeasible
        assert len(injector.injections) == 1
        assert "resilience.retries.sam" not in registry


def test_genuinely_infeasible_model_propagates_untouched():
    m = Model(sense="min", name="impossible")
    x = m.add_variable("x", lb=0.0, ub=1.0)
    m.add_constraint(x >= 2.0)
    m.set_objective(x.to_expr())
    with pytest.raises(InfeasibleError):
        resilient_solve(m, "sam", 0, injector=FaultInjector())


def test_backoff_sleeps_exponentially_and_is_capped(monkeypatch):
    sleeps = []
    monkeypatch.setattr("repro.faults.resilience.time.sleep", sleeps.append)
    injector = FaultInjector.from_spec("sam:solver@5")
    with use_registry(MetricsRegistry()):
        with pytest.raises(SolverError):
            resilient_solve(tiny_model(), "sam", 5,
                            policy=RetryPolicy(retries=4, backoff=0.4),
                            injector=injector)
    assert sleeps == [0.4, 0.8, MAX_BACKOFF, MAX_BACKOFF]


def test_zero_backoff_never_sleeps(monkeypatch):
    def forbidden(_):
        raise AssertionError("backoff=0 must not sleep")
    monkeypatch.setattr("repro.faults.resilience.time.sleep", forbidden)
    injector = FaultInjector.from_spec("sam:solver@5x2")
    with use_registry(MetricsRegistry()):
        resilient_solve(tiny_model(), "sam", 5,
                        policy=RetryPolicy(retries=3), injector=injector)


def test_budget_exhaustion_maps_to_solver_timeout(monkeypatch):
    # A backend that reports status 1 (iteration/time limit reached).
    class _Result:
        status = 1
        message = "iteration limit"
        nit = 7

    monkeypatch.setattr("repro.lp.solver.linprog",
                        lambda *args, **kwargs: _Result())
    with use_registry(MetricsRegistry()) as registry:
        with pytest.raises(SolverTimeout):
            resilient_solve(tiny_model(), "pc", 0,
                            policy=RetryPolicy(retries=1, maxiter=7),
                            injector=FaultInjector())
        # timeouts are transient by policy: the budget was retried once
        assert registry.counter("resilience.retries.pc").value == 1


def test_budgets_are_forwarded_to_the_backend(monkeypatch):
    seen = {}

    import repro.lp.solver as solver_module
    real_linprog = solver_module.linprog

    def spying_linprog(*args, **kwargs):
        seen.update(kwargs.get("options") or {})
        return real_linprog(*args, **kwargs)

    monkeypatch.setattr("repro.lp.solver.linprog", spying_linprog)
    policy = RetryPolicy(time_limit=30.0, maxiter=5000)
    resilient_solve(tiny_model(), "sam", 0, policy=policy,
                    injector=FaultInjector())
    assert seen.get("time_limit") == 30.0
    assert seen.get("maxiter") == 5000


def test_policy_from_config_reads_solver_knobs():
    from repro.core import PretiumConfig
    config = PretiumConfig(solver_retries=4, solver_backoff=0.1,
                           solver_time_limit=2.0, solver_maxiter=123)
    policy = RetryPolicy.from_config(config)
    assert policy == RetryPolicy(retries=4, backoff=0.1, time_limit=2.0,
                                 maxiter=123)


def test_config_validates_fault_spec_eagerly():
    from repro.core import PretiumConfig
    with pytest.raises(ValueError):
        PretiumConfig(faults="sam:explode@5")
    config = PretiumConfig(faults="sam:solver@5x1")
    assert config.faults == "sam:solver@5x1"
