"""Regression tests: LP errors must not escape the timestep loop.

Before the module-boundary handlers, a scheme without its own resilience
layer (any baseline, or a buggy Pretium path) would crash the whole
simulation on the first LP hiccup.  These tests drive a stub scheme that
raises at chosen boundaries and assert the engine absorbs the error,
records a structured :class:`FailureEvent` and finishes the run.
"""

import numpy as np
import pytest

from repro.lp import InfeasibleError, SolverError
from repro.network import parallel_paths_network
from repro.sim import simulate
from repro.sim.engine import FailureEvent
from repro.core import ByteRequest
from repro.telemetry import MetricsRegistry, use_registry
from repro.traffic import Workload


def tiny_workload(n_steps: int = 6) -> Workload:
    topology = parallel_paths_network(10.0, 10.0)
    requests = [ByteRequest(1, "S", "T", 5.0, 1, 1, 4, 2.0),
                ByteRequest(2, "S", "T", 5.0, 2, 2, 5, 2.0)]
    return Workload(topology, requests, n_steps=n_steps,
                    steps_per_day=n_steps)


class FlakyScheme:
    """Minimal scheme whose chosen hooks raise LP errors at chosen steps."""

    name = "Flaky"
    contracts = ()

    def __init__(self, fail: dict[str, tuple[int, Exception]]):
        self.fail = fail
        self.calls = []

    def begin(self, workload):
        pass

    def _maybe_raise(self, hook: str, t: int):
        self.calls.append((hook, t))
        if hook in self.fail and self.fail[hook][0] == t:
            raise self.fail[hook][1]

    def window_start(self, t):
        self._maybe_raise("window_start", t)

    def arrival(self, request, t):
        self._maybe_raise("arrival", t)

    def step(self, t, delivered, loads):
        self._maybe_raise("step", t)
        return []


def test_window_start_failure_is_absorbed():
    scheme = FlakyScheme({"window_start": (0, SolverError("pc down"))})
    with use_registry(MetricsRegistry()) as registry:
        result = simulate(scheme, tiny_workload())
        assert registry.counter("engine.failures.pc").value == 1
    (event,) = result.extras["failures"]
    assert event == FailureEvent(module="pc", step=0, error="SolverError",
                                 detail="pc down")
    # the run went the distance regardless
    assert ("step", 5) in scheme.calls


def test_arrival_failure_is_absorbed_and_names_the_request():
    scheme = FlakyScheme({"arrival": (2, InfeasibleError("no quote"))})
    with use_registry(MetricsRegistry()) as registry:
        result = simulate(scheme, tiny_workload())
        assert registry.counter("engine.failures.ra").value == 1
    (event,) = result.extras["failures"]
    assert (event.module, event.step, event.rid) == ("ra", 2, 2)
    assert event.error == "InfeasibleError"


def test_step_failure_transmits_nothing_and_continues():
    scheme = FlakyScheme({"step": (3, SolverError("sam down"))})
    with use_registry(MetricsRegistry()) as registry:
        result = simulate(scheme, tiny_workload())
        assert registry.counter("engine.failures.sam").value == 1
    (event,) = result.extras["failures"]
    assert (event.module, event.step) == ("sam", 3)
    assert result.total_delivered == 0.0
    assert np.all(result.loads == 0.0)
    assert [t for hook, t in scheme.calls if hook == "step"] == \
        list(range(6))


def test_multiple_failures_all_recorded_in_order():
    scheme = FlakyScheme({"window_start": (0, SolverError("a")),
                          "step": (4, SolverError("b"))})
    with use_registry(MetricsRegistry()) as registry:
        result = simulate(scheme, tiny_workload())
        assert registry.counter("engine.failures").value == 2
    assert [(e.module, e.step) for e in result.extras["failures"]] == \
        [("pc", 0), ("sam", 4)]


def test_non_lp_errors_still_propagate():
    # The boundary handlers are for LP failures only: a genuine bug in a
    # scheme must crash loudly, not be swallowed as degradation.
    scheme = FlakyScheme({"step": (0, RuntimeError("actual bug"))})
    with pytest.raises(RuntimeError, match="actual bug"):
        simulate(scheme, tiny_workload())


def test_clean_runs_carry_no_failure_extras():
    result = simulate(FlakyScheme({}), tiny_workload())
    assert "failures" not in result.extras
    assert "degradation" not in result.extras
