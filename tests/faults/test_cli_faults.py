"""CLI coverage for ``run --faults`` and the metrics report plumbing."""

import json

import pytest

from repro.cli import main


@pytest.fixture()
def small_workload(tmp_path, capsys):
    path = tmp_path / "wl.json"
    main(["generate-workload", "--out", str(path), "--nodes", "8",
          "--days", "1", "--steps-per-day", "6", "--seed", "1"])
    capsys.readouterr()
    return path


def test_run_with_faults_reports_injections(small_workload, capsys):
    code = main(["run", "--scheme", "Pretium", "--workload",
                 str(small_workload), "--faults", "sam:solver@2"])
    assert code == 0
    out = capsys.readouterr().out
    assert "faults injected:" in out
    assert "sam:solver@2" in out
    assert "degraded_steps" in out  # summarize() surfaced the fallback


def test_run_rejects_malformed_fault_spec(small_workload, capsys):
    code = main(["run", "--scheme", "Pretium", "--workload",
                 str(small_workload), "--faults", "sam:explode@2"])
    assert code == 2
    err = capsys.readouterr().err
    assert "bad fault clause" in err


def test_fault_counters_reach_the_telemetry_report(small_workload,
                                                   tmp_path, capsys):
    trace_path = tmp_path / "trace.jsonl"
    code = main(["run", "--scheme", "Pretium", "--workload",
                 str(small_workload), "--faults", "sam:solver@2x1",
                 "--telemetry", str(trace_path)])
    assert code == 0
    capsys.readouterr()

    # The trace's final metrics event carries the fault counters...
    events = [json.loads(line)
              for line in trace_path.read_text().splitlines()]
    (metrics,) = [e for e in events if e.get("type") == "metrics"]
    assert metrics["metrics"]["faults.injected.sam"] >= 1
    assert metrics["metrics"]["resilience.retries.sam"] >= 1

    # ...and `telemetry report` renders them.
    assert main(["telemetry", "report", str(trace_path)]) == 0
    out = capsys.readouterr().out
    assert "faults.injected.sam" in out
    assert "resilience.retries.sam" in out


def test_fault_seed_changes_probabilistic_schedule(small_workload, capsys):
    def injected(seed):
        main(["run", "--scheme", "Pretium", "--workload",
              str(small_workload), "--faults", "sam:solver@p0.5x3",
              "--fault-seed", str(seed)])
        out = capsys.readouterr().out
        (line,) = [row for row in out.splitlines()
                   if row.startswith("faults injected:")]
        return int(line.split()[2])

    counts = {injected(seed) for seed in range(4)}
    assert all(0 <= n <= 3 for n in counts)
