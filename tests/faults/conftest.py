"""Shared world + helpers for the chaos/fault suites.

The chaos world spans two days so the price computer actually runs at a
window boundary mid-run (t=8) — on a one-day world PC faults would have
nothing to hit.  ``run_with_faults`` executes one Pretium run under an
isolated metrics registry and returns the controller, the run result and
the registry snapshot; when ``CHAOS_TELEMETRY_DIR`` is set (the CI
chaos-smoke job does this) every run also writes a JSONL trace there so
a failing run leaves its full telemetry behind as an artifact.
"""

from __future__ import annotations

import os
import re
from contextlib import ExitStack
from pathlib import Path

import pytest

from repro.core import PretiumConfig, PretiumController
from repro.costs import LinkCostModel
from repro.experiments.scenarios import Scenario
from repro.network import wan_topology
from repro.sim import simulate
from repro.telemetry import (MetricsRegistry, TraceWriter, Tracer,
                             use_registry, use_tracer)
from repro.traffic import NormalValues, build_workload

#: Steps per simulated day in the chaos world (also the price window).
STEPS_PER_DAY = 8


@pytest.fixture(scope="session")
def chaos_scenario() -> Scenario:
    """Two-day, 10-node world: PC re-prices at t=8, SAM runs every step."""
    topology = wan_topology(n_nodes=10, n_regions=2, metered_fraction=0.2,
                            metered_cost=25.0, seed=0)
    workload = build_workload(
        topology, n_days=2, steps_per_day=STEPS_PER_DAY, load_factor=2.0,
        values=NormalValues(1.0, 0.5), target_mean_utilization=0.5,
        max_requests_per_pair=8, seed=0)
    return Scenario(topology, workload,
                    LinkCostModel(topology, billing_window=STEPS_PER_DAY))


def chaos_config(spec: str | None = None, **overrides) -> PretiumConfig:
    defaults = dict(window=STEPS_PER_DAY, lookback=STEPS_PER_DAY,
                    solver_retries=1, faults=spec)
    defaults.update(overrides)
    return PretiumConfig(**defaults)


def run_with_faults(scenario: Scenario, spec: str | None,
                    trace_tag: str = "", collector=None, **overrides):
    """One Pretium run under an isolated registry (and optional trace).

    ``collector`` (an :class:`InMemoryCollector`) adds an in-process
    sink, so a test can replay the run's ledger through the invariant
    auditor without touching the filesystem.  Returns ``(controller,
    result, metrics_snapshot)``.
    """
    controller = PretiumController(chaos_config(spec, **overrides))
    with ExitStack() as stack:
        registry = stack.enter_context(use_registry(MetricsRegistry()))
        trace_dir = os.environ.get("CHAOS_TELEMETRY_DIR")
        sinks = []
        if trace_dir:
            Path(trace_dir).mkdir(parents=True, exist_ok=True)
            slug = re.sub(r"[^A-Za-z0-9_.-]+", "_", f"{trace_tag}_{spec}")
            sinks.append(TraceWriter(Path(trace_dir) / f"{slug}.jsonl"))
        if collector is not None:
            sinks.append(collector)
        tracer = None
        if sinks:
            tracer = Tracer(sinks=sinks, registry=registry)
            stack.enter_context(use_tracer(tracer))
        try:
            result = simulate(controller, scenario.workload)
        finally:
            if tracer is not None:
                tracer.emit_metrics()
                tracer.close()
        snapshot = registry.snapshot()
    return controller, result, snapshot


def assert_accounting_invariants(controller, result, scenario) -> None:
    """The invariants every run — degraded or not — must satisfy."""
    import numpy as np

    # Capacity: realised loads never exceed usable link capacity.
    caps = np.array([link.capacity for link in scenario.topology.links])
    assert np.all(result.loads <= caps[None, :] * (1 + 1e-6) + 1e-6)
    by_rid = {c.rid: c for c in controller.contracts}
    # No volume delivered outside a contract.
    assert set(result.delivered) <= set(by_rid)
    for rid, contract in by_rid.items():
        delivered = result.delivered.get(rid, 0.0)
        # Never over-deliver what the customer bought.
        assert delivered <= contract.chosen + 1e-6, rid
        # Settlement matches the quoted menu exactly.
        assert result.payments[rid] == pytest.approx(
            contract.payment_for(delivered)), rid
        assert result.payments[rid] >= -1e-9, rid


def assert_guarantees_met(controller, result,
                          admitted_before: int | None = None) -> None:
    """Every guarantee (optionally: admitted before a step) was honoured."""
    for contract in controller.contracts:
        if admitted_before is not None \
                and contract.admitted_at >= admitted_before:
            continue
        got = result.delivered_by(contract.rid, contract.request.deadline)
        assert got >= contract.guaranteed - 1e-6, (
            f"request {contract.rid} (admitted at {contract.admitted_at}) "
            f"was guaranteed {contract.guaranteed:.6f} but delivered "
            f"{got:.6f} by its deadline")
