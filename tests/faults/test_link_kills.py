"""Tests for scheduled link kills (repro.faults.links) and the flowlet
re-hash chaos path: a mid-run link failure must zero the link's
capacity, refresh the dynamic routing policies, and re-spread flowlets
onto the survivors — all through the same ``NetworkState.fail_link``
path an operator-driven outage takes.
"""

import pytest

from repro.experiments.runner import run_scheme, scheme_spec
from repro.experiments.scenarios import tiny_scenario
from repro.faults import (FaultSpecError, LinkKill, LinkKillSchedule,
                          parse_link_kills)
from repro.network.paths import PathCache
from repro.options import RunOptions
from repro.sim import simulate
from repro.telemetry import InMemoryCollector, Tracer, use_tracer


# -- spec parsing -------------------------------------------------------------

def test_parse_single_clause_and_roundtrip():
    (kill,) = parse_link_kills("S>M1@3")
    assert kill == LinkKill("S", "M1", 3)
    assert kill.spec == "S>M1@3"
    (windowed,) = parse_link_kills("S>M1@3-7")
    assert windowed == LinkKill("S", "M1", 3, 7)
    assert parse_link_kills(windowed.spec) == (windowed,)


def test_parse_multiple_clauses():
    kills = parse_link_kills("S>M1@3, S>M2@5-6")
    assert [k.spec for k in kills] == ["S>M1@3", "S>M2@5-6"]


@pytest.mark.parametrize("spec", [
    "", "  ,  ", "S-M1@3", "S>M1", "S>M1@", "S>M1@x", "S>M1@5-5",
    "S>M1@5-2",
])
def test_bad_specs_rejected(spec):
    with pytest.raises(FaultSpecError):
        parse_link_kills(spec)


def test_run_options_validate_the_spec_eagerly():
    RunOptions(link_kills="a>b@1")  # fine
    with pytest.raises(FaultSpecError):
        RunOptions(link_kills="nonsense")


def test_schedule_groups_kills_by_step():
    schedule = LinkKillSchedule.from_spec("a>b@2,c>d@2,a>b@5")
    assert len(schedule) == 3 and schedule
    assert [k.spec for k in schedule.due(2)] == ["a>b@2", "c>d@2"]
    assert schedule.due(3) == ()
    assert not LinkKillSchedule()


# -- engine integration -------------------------------------------------------

def test_engine_applies_kill_and_flowlet_rehashes():
    scenario = tiny_scenario(seed=0)
    link = scenario.topology.links[0]
    controller = scheme_spec("Pretium").build(
        RunOptions(routing="flowlet"))
    result = simulate(
        controller, scenario.workload,
        options=RunOptions(link_kills=f"{link.src}>{link.dst}@2"))
    assert result.total_delivered > 0
    paths = controller.state.paths
    # The kill refreshed the dynamic policy: dead link recorded, epoch
    # bumped, so every flowlet re-hashed.
    assert paths.policy == "flowlet"
    assert paths.epoch >= 1
    assert (link.src, link.dst) in paths._dead
    # Capacity is ~zero from the kill step onward.
    assert controller.state.capacity[2:, link.index].max() <= 1e-9
    assert controller.state.capacity[:2, link.index].max() > 1e-9


def test_flowlet_pins_move_across_the_kill_epoch():
    """The chaos guarantee: surviving flowlets re-spread after a kill."""
    scenario = tiny_scenario(seed=0)
    link = scenario.topology.links[0]
    controller = scheme_spec("Pretium").build(
        RunOptions(routing="flowlet"))
    simulate(controller, scenario.workload,
             options=RunOptions(link_kills=f"{link.src}>{link.dst}@2"))
    after = controller.state.paths
    before = PathCache(scenario.topology, k=after.k, policy="flowlet")
    moved = 0
    for request in scenario.workload.requests[:60]:
        old = before.routes(request.src, request.dst, rid=request.rid)
        new = after.routes(request.src, request.dst, rid=request.rid)
        if old and new and old != new:
            moved += 1
    assert moved > 0, "a kill must re-pin at least some flowlets"


def test_kills_land_in_the_ledger():
    scenario = tiny_scenario(seed=0)
    link = scenario.topology.links[0]
    controller = scheme_spec("Pretium").build(
        RunOptions(routing="flowlet"))
    collector = InMemoryCollector()
    with use_tracer(Tracer(sinks=[collector])):
        simulate(controller, scenario.workload,
                 options=RunOptions(
                     link_kills=f"{link.src}>{link.dst}@2-4"))
    kills = [e for e in collector.events
             if e.get("event") == "LINK_KILLED"]
    assert kills == [pytest.approx({
        "type": "ledger", "event": "LINK_KILLED", "step": 2,
        "src": link.src, "dst": link.dst, "end": 4,
        "ts": kills[0]["ts"]})]


def test_unknown_link_fails_the_run_loudly():
    scenario = tiny_scenario(seed=0)
    controller = scheme_spec("Pretium").build(RunOptions())
    with pytest.raises(KeyError):
        simulate(controller, scenario.workload,
                 options=RunOptions(link_kills="nope>where@1"))


def test_runner_threads_kills_through_options():
    scenario = tiny_scenario(seed=0)
    link = scenario.topology.links[0]
    base = run_scheme("Pretium", scenario,
                      options=RunOptions(routing="flowlet"))
    killed = run_scheme(
        "Pretium", scenario,
        options=RunOptions(routing="flowlet",
                           link_kills=f"{link.src}>{link.dst}@1"))
    # The outage must be observable in the realised loads: nothing
    # rides the dead link after the kill step.
    assert killed.loads[1:, link.index].max() <= 1e-6
    assert killed.loads.tolist() != base.loads.tolist()
