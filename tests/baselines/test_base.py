"""Tests for the shared offline scheduling LP."""

import numpy as np
import pytest

from repro.baselines import ScheduleItem, solve_offline_schedule, value_grid
from repro.core import ByteRequest
from repro.network import Topology, line_network, parallel_paths_network
from repro.traffic import Workload


def workload(requests, topo=None, n_steps=4):
    topo = topo or parallel_paths_network(10.0, 10.0)
    return Workload(topo, requests, n_steps=n_steps, steps_per_day=n_steps)


def test_schedules_full_demand_when_feasible():
    reqs = [ByteRequest(0, "S", "T", 15.0, 0, 0, 3, 2.0)]
    wl = workload(reqs)
    schedule = solve_offline_schedule(
        wl, [ScheduleItem(reqs[0], weight=2.0, cap=15.0)])
    assert schedule.delivered[0] == pytest.approx(15.0)
    assert schedule.objective == pytest.approx(30.0)


def test_respects_cap():
    reqs = [ByteRequest(0, "S", "T", 15.0, 0, 0, 3, 2.0)]
    wl = workload(reqs)
    schedule = solve_offline_schedule(
        wl, [ScheduleItem(reqs[0], weight=2.0, cap=4.0)])
    assert schedule.delivered[0] == pytest.approx(4.0)


def test_zero_cap_items_skipped():
    reqs = [ByteRequest(0, "S", "T", 15.0, 0, 0, 3, 2.0)]
    wl = workload(reqs)
    schedule = solve_offline_schedule(
        wl, [ScheduleItem(reqs[0], weight=2.0, cap=0.0)])
    assert schedule.delivered == {}
    assert schedule.objective == 0.0


def test_capacity_shared_between_requests():
    reqs = [ByteRequest(0, "S", "T", 100.0, 0, 0, 0, 3.0),
            ByteRequest(1, "S", "T", 100.0, 0, 0, 0, 1.0)]
    wl = workload(reqs, n_steps=1)
    schedule = solve_offline_schedule(
        wl, [ScheduleItem(r, weight=r.value, cap=r.demand) for r in reqs])
    # 20 units total (two 2-hop paths of 10); high value wins all of it
    assert schedule.delivered.get(0, 0.0) == pytest.approx(20.0)
    assert schedule.delivered.get(1, 0.0) == pytest.approx(0.0, abs=1e-6)
    assert np.all(schedule.loads <= 10.0 + 1e-6)


def test_allowed_steps_mask():
    reqs = [ByteRequest(0, "S", "T", 100.0, 0, 0, 3, 1.0)]
    wl = workload(reqs)
    schedule = solve_offline_schedule(
        wl, [ScheduleItem(reqs[0], weight=1.0, cap=100.0,
                          allowed_steps={1, 2})])
    assert schedule.delivered[0] == pytest.approx(40.0)
    series = schedule.per_step[0]
    assert series[0] == 0.0 and series[3] == 0.0
    assert series[1] == pytest.approx(20.0)


def test_metered_cost_discourages_worthless_traffic():
    topo = Topology()
    topo.add_link("a", "b", 10.0, metered=True, cost_per_unit=50.0)
    reqs = [ByteRequest(0, "a", "b", 10.0, 0, 0, 3, 0.1)]
    wl = workload(reqs, topo=topo)
    schedule = solve_offline_schedule(
        wl, [ScheduleItem(reqs[0], weight=0.1, cap=10.0)])
    # k=1 on a 4-step window: every peak unit costs 50 > value 0.1
    assert schedule.delivered.get(0, 0.0) == pytest.approx(0.0, abs=1e-6)


def test_include_costs_false_routes_anyway():
    topo = Topology()
    topo.add_link("a", "b", 10.0, metered=True, cost_per_unit=50.0)
    reqs = [ByteRequest(0, "a", "b", 10.0, 0, 0, 3, 0.1)]
    wl = workload(reqs, topo=topo)
    schedule = solve_offline_schedule(
        wl, [ScheduleItem(reqs[0], weight=0.1, cap=10.0)],
        include_costs=False)
    assert schedule.delivered[0] == pytest.approx(10.0)


def test_loads_match_per_step_totals():
    reqs = [ByteRequest(0, "S", "T", 30.0, 0, 0, 3, 2.0)]
    wl = workload(reqs)
    schedule = solve_offline_schedule(
        wl, [ScheduleItem(reqs[0], weight=2.0, cap=30.0)])
    # every unit crosses exactly 2 links
    assert schedule.loads.sum() == pytest.approx(2 * 30.0)


def test_empty_items():
    wl = workload([])
    schedule = solve_offline_schedule(wl, [])
    assert schedule.objective == 0.0
    assert schedule.loads.shape == (4, 4)


def test_value_grid():
    reqs = [ByteRequest(i, "S", "T", 1.0, 0, 0, 1, float(i + 1))
            for i in range(10)]
    grid = value_grid(reqs, n_points=5)
    assert grid == sorted(grid)
    assert min(grid) == pytest.approx(1.0)
    assert max(grid) == pytest.approx(10.0)
    assert value_grid([], 5) == [0.0]
    assert len(value_grid(reqs, 1)) == 1
