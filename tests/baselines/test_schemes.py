"""Tests for the individual baseline schemes."""

import numpy as np
import pytest

from repro.baselines import (NoPrices, OfflineOptimal, PeakOracle,
                             PretiumNoMenu, PretiumNoSAM, RegionOracle,
                             VCGLike, offered_demand_profile,
                             peak_steps_of_day)
from repro.core import ByteRequest
from repro.costs import LinkCostModel
from repro.network import Topology, parallel_paths_network, wan_topology
from repro.sim import metrics, simulate
from repro.traffic import Workload, build_workload


def simple_workload():
    topo = parallel_paths_network(10.0, 10.0)
    reqs = [
        ByteRequest(0, "S", "T", 10.0, 0, 0, 1, 3.0),
        ByteRequest(1, "S", "T", 10.0, 0, 0, 3, 1.0),
        ByteRequest(2, "S", "T", 10.0, 2, 2, 3, 0.2),
    ]
    return Workload(topo, reqs, n_steps=4, steps_per_day=4), topo


def regioned_workload():
    topo = wan_topology(n_nodes=8, n_regions=2, seed=1,
                        metered_fraction=0.25)
    return build_workload(topo, n_days=1, steps_per_day=6, load_factor=2.0,
                          seed=1, max_requests_per_pair=10), topo


# -- OPT ------------------------------------------------------------------

def test_opt_serves_everything_when_free():
    wl, topo = simple_workload()
    result = OfflineOptimal().run(wl)
    for r in wl.requests:
        assert result.delivered[r.rid] == pytest.approx(r.demand)
    assert result.scheme_name == "OPT"


def test_opt_dominates_other_schemes():
    wl, topo = regioned_workload()
    cm = LinkCostModel(topo, billing_window=wl.steps_per_day)
    opt_welfare = metrics.welfare(OfflineOptimal().run(wl), cm)
    for scheme in (NoPrices(), RegionOracle(grid_points=4),
                   PeakOracle(grid_points=4)):
        assert metrics.welfare(scheme.run(wl), cm) <= opt_welfare + 1e-6


def test_opt_skips_negative_welfare_traffic():
    topo = Topology()
    topo.add_link("a", "b", 10.0, metered=True, cost_per_unit=100.0)
    reqs = [ByteRequest(0, "a", "b", 10.0, 0, 0, 3, 0.01)]
    wl = Workload(topo, reqs, n_steps=4, steps_per_day=4)
    result = OfflineOptimal().run(wl)
    assert result.delivered.get(0, 0.0) == pytest.approx(0.0, abs=1e-6)


# -- NoPrices ---------------------------------------------------------------

def test_noprices_ignores_values():
    wl, topo = simple_workload()
    result = NoPrices().run(wl)
    # everything fits, so everything is carried regardless of value
    for r in wl.requests:
        assert result.delivered[r.rid] == pytest.approx(r.demand)


def test_noprices_can_produce_negative_welfare():
    """Carrying worthless traffic on costly links: welfare < 0 (Fig 6)."""
    topo = Topology()
    topo.add_link("a", "b", 10.0, metered=True, cost_per_unit=5.0)
    reqs = [ByteRequest(0, "a", "b", 20.0, 0, 0, 3, 0.01)]
    wl = Workload(topo, reqs, n_steps=4, steps_per_day=4)
    result = NoPrices(mode="cost_blind").run(wl)
    cm = LinkCostModel(topo, billing_window=4)
    assert metrics.welfare(result, cm) < 0


# -- RegionOracle -------------------------------------------------------------

def test_region_oracle_admits_by_price():
    wl, topo = regioned_workload()
    result = RegionOracle(grid_points=4).run(wl)
    intra = result.extras["intra_price"]
    inter = result.extras["inter_price"]
    assert inter >= intra
    # no request with value below its applicable price was served
    from repro.network.regions import is_inter_region
    for r in wl.requests:
        if result.delivered.get(r.rid, 0.0) > 1e-6:
            price = inter if is_inter_region(topo, r.src, r.dst) else intra
            assert r.value >= price - 1e-9


def test_region_oracle_payments_match_prices():
    wl, topo = regioned_workload()
    result = RegionOracle(grid_points=4).run(wl)
    from repro.network.regions import is_inter_region
    for rid, paid in result.payments.items():
        r = result.request_by_id(rid)
        price = result.extras["inter_price"] \
            if is_inter_region(topo, r.src, r.dst) \
            else result.extras["intra_price"]
        assert paid == pytest.approx(price * result.delivered[rid])


def test_region_oracle_validation():
    with pytest.raises(ValueError):
        RegionOracle(grid_points=0)


# -- PeakOracle ---------------------------------------------------------------

def test_offered_demand_profile_folds_days():
    topo = parallel_paths_network()
    reqs = [ByteRequest(0, "S", "T", 4.0, 0, 0, 1, 1.0),
            ByteRequest(1, "S", "T", 4.0, 2, 2, 3, 1.0)]
    wl = Workload(topo, reqs, n_steps=4, steps_per_day=2)
    profile = offered_demand_profile(wl)
    assert profile.shape == (2,)
    assert profile.sum() == pytest.approx(4.0)


def test_peak_steps_above_average():
    topo = parallel_paths_network()
    reqs = [ByteRequest(0, "S", "T", 30.0, 1, 1, 1, 1.0),
            ByteRequest(1, "S", "T", 2.0, 0, 0, 3, 1.0)]
    wl = Workload(topo, reqs, n_steps=4, steps_per_day=4)
    assert peak_steps_of_day(wl) == {1}


def test_peak_oracle_charges_step_prices():
    wl, topo = regioned_workload()
    result = PeakOracle(grid_points=4).run(wl)
    assert result.extras["peak_price"] >= result.extras["off_price"]
    assert all(p >= -1e-9 for p in result.payments.values())


def test_peak_oracle_validation():
    with pytest.raises(ValueError):
        PeakOracle(grid_points=0)


# -- VCGLike --------------------------------------------------------------------

def test_vcg_like_serves_high_value_first():
    topo = parallel_paths_network(5.0, 5.0)
    reqs = [ByteRequest(0, "S", "T", 10.0, 0, 0, 0, 3.0),
            ByteRequest(1, "S", "T", 10.0, 0, 0, 0, 1.0)]
    wl = Workload(topo, reqs, n_steps=1, steps_per_day=1)
    result = VCGLike().run(wl)
    # 10 units capacity in one step; both want 10; high value wins
    assert result.delivered.get(0, 0.0) == pytest.approx(10.0)
    assert result.delivered.get(1, 0.0) == pytest.approx(0.0, abs=1e-6)


def test_vcg_payments_are_externalities():
    topo = parallel_paths_network(5.0, 5.0)
    reqs = [ByteRequest(0, "S", "T", 10.0, 0, 0, 0, 3.0),
            ByteRequest(1, "S", "T", 10.0, 0, 0, 0, 1.0)]
    wl = Workload(topo, reqs, n_steps=1, steps_per_day=1)
    result = VCGLike().run(wl)
    # without request 0, request 1 would have carried 10 units at value 1
    assert result.payments[0] == pytest.approx(10.0)


def test_vcg_no_payment_without_contention():
    topo = parallel_paths_network(10.0, 10.0)
    reqs = [ByteRequest(0, "S", "T", 5.0, 0, 0, 1, 3.0)]
    wl = Workload(topo, reqs, n_steps=2, steps_per_day=2)
    result = VCGLike().run(wl)
    assert result.delivered[0] == pytest.approx(5.0)
    assert result.payments.get(0, 0.0) == pytest.approx(0.0, abs=1e-6)


def test_vcg_spreads_over_steps_to_deadline():
    topo = parallel_paths_network(5.0, 5.0)
    reqs = [ByteRequest(0, "S", "T", 20.0, 0, 0, 1, 2.0)]
    wl = Workload(topo, reqs, n_steps=2, steps_per_day=2)
    result = VCGLike().run(wl)
    # rate at t=0 is 20/2 = 10 (both paths), rest at t=1
    assert result.delivered[0] == pytest.approx(20.0)
    assert result.loads[0].sum() == pytest.approx(result.loads[1].sum())


# -- Ablations -------------------------------------------------------------------

def test_nomenu_is_all_or_nothing():
    topo = parallel_paths_network(10.0, 10.0)
    # demand exceeds guarantee capacity -> NoMenu must reject entirely
    reqs = [ByteRequest(0, "S", "T", 100.0, 0, 0, 1, 5.0)]
    wl = Workload(topo, reqs, n_steps=2, steps_per_day=2)
    result = simulate(PretiumNoMenu(), wl)
    assert result.delivered.get(0, 0.0) == pytest.approx(0.0, abs=1e-6)
    full = simulate(PretiumNoMenu(), Workload(
        topo, [ByteRequest(0, "S", "T", 30.0, 0, 0, 1, 5.0)],
        n_steps=2, steps_per_day=2))
    assert full.delivered[0] == pytest.approx(30.0)


def test_nosam_uses_config_flag():
    wl, _ = regioned_workload()
    scheme = PretiumNoSAM()
    result = simulate(scheme, wl)
    assert scheme.config.sam_enabled is False
    assert result.scheme_name == "Pretium-NoSAM"


def test_ablation_names():
    assert PretiumNoMenu().name == "Pretium-NoMenu"
    assert PretiumNoSAM().name == "Pretium-NoSAM"
