"""Perf benchmark: SAM incremental solving vs the cold-solve reference.

Runs the same gapped-arrival scenario through :func:`repro.api.run`
three times:

- **cold** — skeleton cache and fast path off (the pre-incremental
  reference: every step rebuilds the COO model from scratch and
  cold-solves it);
- **warm** — skeleton cache on, fast path off (arrivals append cached
  per-contract skeletons, settlements evict them, surviving contracts
  are trimmed by an affine renumber instead of rebuilt).  This run must
  be **bit-identical** to cold — patching changes how the matrix is
  assembled, never its entries — and the bench asserts delivered,
  payments, chosen and the realised load grid match exactly;
- **fast** — skeleton cache and quiet-step fast path on (steps with no
  arrivals reuse the previous plan's tail without touching the LP).
  The reused tail is *an* optimum of a degenerate LP, not necessarily
  the cold solver's vertex, so the bench asserts what economics pins
  down: identical admit/reject decisions (``chosen``) and payment and
  delivered **totals** equal to the last float.

Arrivals are gapped on purpose: the scenario's arrival stream is
squeezed into the first quarter of the horizon (deadlines stretched to
keep windows legal), so most steps are quiet and the fast path gets the
workload it exists for.  Stock scenarios offer arrivals every step, so
on them the fast path never fires and warm == cold bit-identity is the
whole story (that is what the chaos grid and sweep differential suites
pin).

The recorded JSON (rolled into ``BENCH_PERF.json``) reports all three
wall times, ``warm_speedup`` (cold/warm) and ``fast_speedup``
(cold/fast, the headline end-to-end number), plus the fast-path and
skeleton counters so a regression in trigger rate is visible in the
artifact, not just in the timing noise.

Timings are recorded, never gated (CI fails on crash, not slowness).
Scale with ``BENCH_PERF_SCALE=small|medium`` (CI uses ``small``).
"""

import dataclasses
import math
import os
import time

import numpy as np

from repro.api import run
from repro.registry import SCENARIOS
from repro.options import RunOptions
from repro.telemetry import get_registry, use_registry

SCALES = {
    "small": dict(scenario="quick", seed=0),
    "medium": dict(scenario="standard", seed=0),
}

COUNTERS = ("sam.fast_path.hits", "sam.fast_path.misses",
            "sam.skeleton.hits", "sam.skeleton.misses",
            "sam.skeleton.trims", "lp.session.warm_starts",
            "lp.session.cold_starts")


def gapped_scenario(name, seed):
    """The named scenario with its arrivals squeezed into the first
    quarter of the horizon (deadlines stretched so windows stay legal):
    the remaining three quarters of the steps offer no arrivals, which
    is the regime the quiet-step fast path targets."""
    scenario = SCENARIOS.get(name)(seed=seed)
    workload = scenario.workload
    quarter = max(1, workload.n_steps // 4)
    requests = []
    for request in workload.requests:
        arrival = request.arrival % quarter
        start = max(request.start, arrival)
        deadline = max(request.deadline,
                       min(workload.n_steps - 1, start + 4))
        requests.append(dataclasses.replace(
            request, arrival=arrival, start=start, deadline=deadline))
    requests.sort(key=lambda r: (r.arrival, r.rid))
    workload = dataclasses.replace(workload, requests=requests)
    return dataclasses.replace(scenario, workload=workload)


def run_variant(scenario_name, seed, **knobs):
    """One full Pretium run on the gapped scenario, fresh registry."""
    scenario = gapped_scenario(scenario_name, seed)
    with use_registry():
        begin = time.perf_counter()
        report = run("Pretium", scenario,
                     options=RunOptions(solver_backend="scipy", **knobs))
        wall = time.perf_counter() - begin
        registry = get_registry()
        counters = {name: registry.counter(name).value for name in COUNTERS}
    return report.result, wall, counters


def bench_perf_sam_warm(benchmark, record):
    scale_name = os.environ.get("BENCH_PERF_SCALE", "medium")
    scale = SCALES[scale_name]
    name, seed = scale["scenario"], scale["seed"]

    fast, fast_wall, fast_counters = benchmark.pedantic(
        run_variant, args=(name, seed), rounds=1, iterations=1)
    cold, cold_wall, _ = run_variant(
        name, seed, sam_skeleton_cache=False, sam_fast_path=False)
    warm, warm_wall, warm_counters = run_variant(
        name, seed, sam_fast_path=False)

    # Patching is pure assembly: warm must be the cold run, bit for bit.
    assert warm.chosen == cold.chosen
    assert warm.payments == cold.payments
    assert warm.delivered == cold.delivered
    assert np.array_equal(warm.loads, cold.loads)
    assert warm_counters["sam.skeleton.hits"] \
        + warm_counters["sam.skeleton.trims"] > 0, \
        "warm run never reused a cached skeleton"

    # The fast path reuses an optimal tail of a degenerate LP: decisions
    # and totals are pinned, per-request splits may sit on another
    # optimal vertex.
    assert fast.chosen == cold.chosen, \
        "fast path changed admission decisions"
    assert math.isclose(sum(fast.payments.values()),
                        sum(cold.payments.values()),
                        rel_tol=1e-9, abs_tol=1e-6)
    assert math.isclose(sum(fast.delivered.values()),
                        sum(cold.delivered.values()),
                        rel_tol=1e-9, abs_tol=1e-6)
    assert fast_counters["sam.fast_path.hits"] > 0, \
        "gapped workload never took the fast path"

    scenario = gapped_scenario(name, seed)
    result = {
        "scale": scale_name,
        "scenario": name,
        "n_requests": scenario.workload.n_requests,
        "n_steps": scenario.workload.n_steps,
        "quiet_steps": scenario.workload.n_steps
        - len({r.arrival for r in scenario.workload.requests}),
        "cold_s": cold_wall,
        "warm_s": warm_wall,
        "fast_s": fast_wall,
        "warm_speedup": cold_wall / warm_wall,
        "fast_speedup": cold_wall / fast_wall,
        "fast_counters": fast_counters,
        "warm_counters": warm_counters,
    }
    record(result)
    print(f"\nsam warm ({scale_name}, {result['n_requests']} requests, "
          f"{result['n_steps']} steps, {result['quiet_steps']} quiet): "
          f"cold {cold_wall:.2f}s, warm {warm_wall:.2f}s "
          f"({result['warm_speedup']:.2f}x, bit-identical), "
          f"fast {fast_wall:.2f}s ({result['fast_speedup']:.2f}x, "
          f"{fast_counters['sam.fast_path.hits']} fast-path steps, "
          "decisions identical)")
