"""Figure 7: why dynamic prices help (one Pretium run at load 2).

7a — prices track utilisation on a congested link over time;
7b — Pretium captures value across *all* value buckets (the fixed-price
     oracles capture none from the cheap buckets);
7c — realised price per byte rises with the request's private value.
"""

import numpy as np
from conftest import run_once

from repro.experiments import format_table
from repro.experiments.figures import figure7


def bench_figure7(benchmark, record):
    data = run_once(benchmark, figure7, seed=0, load_factor=2.0)

    dyn = data["price_dynamics"]
    utilization = np.asarray(dyn["utilization"])
    price = np.asarray(dyn["price"])
    print(f"\nFigure 7a — link {dyn['link']}: "
          f"corr(price, utilisation) = {dyn['corr']:.2f}")
    assert dyn["corr"] > 0.2  # prices track utilisation on the shown link

    buckets = data["value_buckets"]
    rows = [[f"[{buckets['edges'][i]:.2f},{buckets['edges'][i+1]:.2f})",
             buckets["pretium"][i], buckets["opt"][i]]
            for i in range(len(buckets["pretium"]))]
    print(format_table(["value bucket", "Pretium value", "OPT value"], rows))

    points = np.asarray(data["price_vs_value"])
    if len(points) > 10:
        corr = np.corrcoef(points[:, 0], points[:, 1])[0, 1]
        print(f"Figure 7c — corr(value, price paid per byte) = {corr:.2f}")
        # higher-value requests pay (weakly) more per byte
        assert corr > 0.0
    record({"value_buckets": buckets,
            "price_utilization_corr": dyn["corr"]})
    # Pretium captures value in the lowest bucket too (unlike the oracles)
    assert buckets["pretium"][0] > 0
