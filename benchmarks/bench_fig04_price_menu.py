"""Figure 4: sample price menus for two deadlines.

Paper shape: the request with the shorter deadline faces a (weakly)
higher menu and a smaller guarantee bound x-bar.
"""

from conftest import run_once

from repro.experiments.figures import figure4


def bench_figure4(benchmark, record):
    data = run_once(benchmark, figure4, seed=0)
    print("\nFigure 4 — price menus (cumulative volume, marginal price)")
    for label in ("tight", "loose"):
        menu = data[label]
        head = ", ".join(f"({q:.0f}, {p:.3f})"
                         for q, p in menu["breakpoints"][:5])
        print(f"  {label:6s}: x_bar={menu['x_bar']:9.1f}  {head}")
    record(data)
    assert data["loose"]["x_bar"] >= data["tight"]["x_bar"] - 1e-9
