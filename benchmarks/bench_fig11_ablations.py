"""Figure 11: Pretium ablations.

Paper shape: removing the price menu (all-or-nothing contracts) costs
1.3-2x in welfare; removing the schedule adjuster costs ~3x.
"""

from conftest import run_once

from repro.experiments import format_series
from repro.experiments.figures import figure11


def bench_figure11(benchmark, record):
    data = run_once(benchmark, figure11, seed=0)
    print("\n" + format_series("Figure 11 — ablations, welfare rel. OPT",
                               data["load_factors"], data["welfare_rel"],
                               x_label="load"))
    record(data)
    welfare = data["welfare_rel"]
    loads = range(len(data["load_factors"]))
    pretium = sum(welfare["Pretium"][i] for i in loads)
    nomenu = sum(welfare["Pretium-NoMenu"][i] for i in loads)
    nosam = sum(welfare["Pretium-NoSAM"][i] for i in loads)
    assert pretium > nomenu
    assert pretium > nosam
