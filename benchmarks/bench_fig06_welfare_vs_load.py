"""Figure 6: welfare relative to OPT across load factors.

Paper shape: Pretium stays above ~60% of OPT and above every baseline;
the fixed-price oracles sit well below it; the value-blind NoPrices TE
does worst (negative in the paper's cost regime).
"""

from conftest import run_once

from repro.experiments import format_series
from repro.experiments.figures import figure6


def bench_figure6(benchmark, record):
    data = run_once(benchmark, figure6, seed=0)
    print("\n" + format_series("Figure 6 — welfare relative to OPT",
                               data["load_factors"], data["welfare_rel"],
                               x_label="load"))
    record(data)
    welfare = data["welfare_rel"]
    for i in range(len(data["load_factors"])):
        # Pretium beats every baseline at every load factor ...
        for name in ("NoPrices", "RegionOracle", "PeakOracle", "VCGLike"):
            assert welfare["Pretium"][i] > welfare[name][i] - 0.02, \
                f"{name} at load {data['load_factors'][i]}"
        # ... and NoPrices trails the price-based schemes.
        assert welfare["NoPrices"][i] < welfare["Pretium"][i]
    assert min(welfare["Pretium"]) > 0.5
