"""Ablation: the paper's Theorem 4.2 sorting network vs the CVaR encoding.

Both upper-bound the sum of the top-k exactly at the optimum; the bench
verifies they agree and compares model sizes and solve times.  The
paper's construction uses 3 constraints per comparator (40% fewer than
prior work's 5); the CVaR form is asymptotically smaller still, which is
why it is the default.
"""

import numpy as np
import pytest

from repro.experiments import format_table
from repro.lp import (Model, add_sum_topk, quicksum, sum_topk_exact,
                      topk_constraint_count)

T, K = 48, 5


def _solve(encoding: str, seed: int = 0) -> float:
    rng = np.random.default_rng(seed)
    caps = rng.uniform(1.0, 5.0, size=T)
    model = Model(sense="min")
    xs = [model.add_variable(f"x{t}", ub=float(caps[t])) for t in range(T)]
    model.add_constraint(quicksum(xs) >= float(caps.sum()) * 0.8)
    bound = add_sum_topk(model, xs, K, encoding=encoding)
    model.set_objective(quicksum(xs) * 0.01 + bound.to_expr())
    return model.solve().objective


@pytest.mark.parametrize("encoding", ["cvar", "sorting"])
def bench_topk_encoding(benchmark, encoding):
    objective = benchmark(_solve, encoding)
    rows = [[enc, topk_constraint_count(T, K, enc)]
            for enc in ("cvar", "sorting")]
    print(f"\nTop-k encodings at T={T}, k={K} "
          f"(objective {objective:.4f})")
    print(format_table(["encoding", "constraints"], rows))
    assert _solve("cvar") == pytest.approx(_solve("sorting"), rel=1e-6)
    assert topk_constraint_count(T, K, "cvar") < \
        topk_constraint_count(T, K, "sorting")
