"""Perf benchmark: the live admission service, warm cache vs cold.

Replays a scenario's arrival stream through :func:`repro.serve` twice —
with the warm menu cache (each admission preceded by price-check probes
that re-quote the same request, the pattern a live customer comparing
windows produces) and fully cold (``cache_size=0``, every probe re-runs
the greedy) — and asserts the two runs make **identical admit/reject
decisions** (the cache serves bit-identical menus or nothing).  The
recorded JSON (rolled into ``BENCH_PERF.json``) reports quotes/sec and
p50/p99 end-to-end quote latency for both runs plus the measured
``warm_speedup`` (cold wall / warm wall).  End-to-end latency is also
split into its components — ``queue_p50/p99_ms`` (micro-batch queueing
wait) and ``service_p50/p99_ms`` (actual quoting work) — so the open
loop's queueing delay is never read as service slowness.

Timings are recorded, never gated (CI fails on crash, not slowness).
Scale with ``BENCH_PERF_SCALE=small|medium`` (CI uses ``small``).
"""

import os

import repro
from repro.service import generate_load
from repro.telemetry import get_registry, use_registry

SCALES = {
    "small": dict(scenario="tiny", seed=0, price_checks=4),
    "medium": dict(scenario="quick", seed=0, price_checks=4),
}


def run_service(scenario, requests, price_checks, cache_size):
    """One full service lifetime under synthetic load, fresh registry."""
    with use_registry():
        with repro.serve(
                "Pretium", scenario,
                service_options=repro.ServiceOptions(
                    cache_size=cache_size)) as svc:
            report = generate_load(svc.service, requests,
                                   price_checks=price_checks)
            decisions = list(svc.engine.decisions)
            svc.close()
        registry = get_registry()
        cache = {name: registry.counter(f"service.menu_cache.{name}").value
                 for name in ("hits", "misses", "invalidations")}
    return report, decisions, cache


def _stats(report, cache):
    latency = report.latency_ms
    return {
        "quotes_per_s": report.quotes_per_s,
        "wall_s": report.wall_s,
        "latency_p50_ms": latency.get("p50"),
        "latency_p99_ms": latency.get("p99"),
        "queue_p50_ms": report.queue_ms.get("p50"),
        "queue_p99_ms": report.queue_ms.get("p99"),
        "service_p50_ms": report.service_ms.get("p50"),
        "service_p99_ms": report.service_ms.get("p99"),
        "cache": cache,
    }


def bench_perf_service(benchmark, record):
    scale_name = os.environ.get("BENCH_PERF_SCALE", "medium")
    scale = SCALES[scale_name]
    spec = repro.ScenarioSpec.of(scale["scenario"])
    checks = scale["price_checks"]

    def build():
        scenario = spec.build(seed=scale["seed"])
        requests = sorted(scenario.workload.requests,
                          key=lambda r: (r.arrival, r.rid))
        return scenario, requests

    scenario, requests = build()
    warm_report, warm_decisions, warm_cache = benchmark.pedantic(
        run_service, args=(scenario, requests, checks, 1024),
        rounds=1, iterations=1)
    scenario, requests = build()
    cold_report, cold_decisions, cold_cache = run_service(
        scenario, requests, checks, 0)

    assert warm_decisions == cold_decisions, \
        "warm cache changed admission decisions"
    assert warm_report.errors == 0 and cold_report.errors == 0
    assert warm_cache["hits"] > 0, "warm run produced no cache hits"

    result = {
        "scale": scale_name,
        "scenario": scale["scenario"],
        "n_requests": len(requests),
        "price_checks_per_request": checks,
        "admitted": warm_report.admitted,
        "rejected": warm_report.rejected,
        "warm": _stats(warm_report, warm_cache),
        "cold": _stats(cold_report, cold_cache),
        "quotes_per_s": warm_report.quotes_per_s,
        "latency_p50_ms": warm_report.latency_ms.get("p50"),
        "latency_p99_ms": warm_report.latency_ms.get("p99"),
        "warm_speedup": cold_report.wall_s / warm_report.wall_s,
    }
    record(result)
    print(f"\nservice ({scale_name}, {len(requests)} requests x "
          f"{1 + checks} quotes): warm {warm_report.quotes_per_s:.0f} q/s "
          f"(p50 {result['latency_p50_ms']:.2f} ms, "
          f"p99 {result['latency_p99_ms']:.2f} ms, "
          f"{warm_cache['hits']} hits), cold "
          f"{cold_report.quotes_per_s:.0f} q/s -> "
          f"{result['warm_speedup']:.2f}x warm speedup, "
          "decisions identical")
