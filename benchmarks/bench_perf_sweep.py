"""Perf benchmark: the persistent-worker sweep vs the serial reference.

Runs the same scheme x seed grid twice through
:func:`repro.experiments.sweep.run_sweep` — serially (``workers=1``, the
reference path) and across a persistent 4-worker pool (forkserver with
the sweep module preloaded where available, per-worker scenario caches,
adaptive chunking) — and asserts the two sweeps are bit-identical cell
by cell (summaries, per-request delivered/payments/chosen, the realised
load grids; measured module runtimes are excluded, wall-clock is not
deterministic).  The bit-identity assertion runs BEFORE any speedup is
recorded: a fast wrong sweep must fail the bench, not set a number.

The recorded JSON (``benchmarks/results/bench_perf_sweep.json``) leads
with the machine's CPU count and reports both wall times; the speedup
ratio is recorded only when ``cpu_count >= 2`` — on a single-core
runner the parallel path only measures pool overhead, so the JSON
carries an explanatory ``speedup_note`` instead of a misleading ratio.

Timings are recorded, never gated (CI fails on crash, not slowness).
Scale with ``BENCH_PERF_SCALE=small|medium`` (CI uses ``small``).
"""

import os

import numpy as np

from repro.experiments.runner import SCHEME_SPECS
from repro.experiments.sweep import SweepGrid, run_sweep
from repro.options import RunOptions

SCALES = {
    "small": dict(schemes=("Pretium", "NoPrices", "OPT", "VCGLike"),
                  seeds=(0, 1)),
    "medium": dict(schemes=tuple(sorted(SCHEME_SPECS)), seeds=(0, 1)),
}

WORKERS = 4


def run_grid(workers, schemes, seeds):
    grid = SweepGrid(schemes=schemes, scenarios=("tiny",), seeds=seeds)
    return run_sweep(grid, options=RunOptions(workers=workers))


def _comparable(summary):
    """A cell summary minus the measured (non-deterministic) runtimes."""
    return {k: v for k, v in summary.items() if k != "runtimes"}


def bench_perf_sweep(benchmark, record):
    scale_name = os.environ.get("BENCH_PERF_SCALE", "medium")
    scale = SCALES[scale_name]

    parallel = benchmark.pedantic(
        run_grid, args=(WORKERS,), kwargs=scale, rounds=1, iterations=1)
    serial = run_grid(1, **scale)

    assert serial.ok, [c.detail for c in serial.failures]
    assert parallel.ok, [c.detail for c in parallel.failures]
    for ref, par in zip(serial.cells, parallel.cells):
        assert ref.label == par.label
        assert _comparable(ref.summary) == _comparable(par.summary), ref.label
        assert ref.delivered == par.delivered, ref.label
        assert ref.payments == par.payments, ref.label
        assert ref.chosen == par.chosen, ref.label
        assert np.array_equal(ref.loads, par.loads), ref.label

    cpu_count = os.cpu_count()
    result = {
        # cpu_count leads: it decides whether the serial-vs-parallel
        # comparison below means anything at all.
        "cpu_count": cpu_count,
        "scale": scale_name,
        "n_cells": len(serial.cells),
        "schemes": list(scale["schemes"]),
        "seeds": list(scale["seeds"]),
        "workers": WORKERS,
        "serial_s": serial.wall_s,
        "parallel_s": parallel.wall_s,
    }
    if cpu_count is not None and cpu_count >= 2:
        result["speedup"] = serial.wall_s / parallel.wall_s
        verdict = f"-> {result['speedup']:.2f}x"
    else:
        # On a single-core box the workers time-share one CPU and the
        # "speedup" would only measure pool start-up overhead; recording
        # it would read as a perf regression when it is a machine fact.
        result["speedup_note"] = (
            f"speedup not recorded: cpu_count={cpu_count} < 2, so "
            "parallel workers time-share one core and wall-clock "
            "comparison measures pool overhead, not scaling")
        verdict = "(speedup n/a on <2 cpus)"
    record(result)
    print(f"\nsweep ({scale_name}, {result['n_cells']} cells, "
          f"{cpu_count} cpu): serial {serial.wall_s:.2f} s, "
          f"{WORKERS} workers {parallel.wall_s:.2f} s "
          f"{verdict}, bit-identical")
