"""Perf benchmark: the declarative campaign runner, end to end.

Runs one campaign spec through :func:`repro.experiments.campaign
.run_campaign` — spec → persistent-worker sweeps → figure registry →
report artifact — and records what the paper-scale reproduction story
needs tracked run-over-run: total wall-clock, peak RSS (self plus
reaped workers), and the per-stage timing breakdown, all of which the
runner itself measures into ``campaign.json``.

Scales (``BENCH_PERF_SCALE``, CI uses ``small``):

- ``small`` — the ``smoke`` preset: 2 cells on the tiny world, seconds.
- ``medium`` (default) — a 3-scheme campaign on the standard 16-node
  WAN: the shape of a real figure run at benchmark-loop cost.
- ``paper`` — the ``paper-scale`` preset: the 106-node / ~226-edge
  production WAN at the paper's 288 steps/day over a two-day horizon
  (minutes; run explicitly, never in the default loop).

Worker count is capped at the machine's CPU count so a single-core
runner measures the serial path instead of pool overhead.  Timings are
recorded, never gated (CI fails on crash, not slowness).
"""

import os

from repro.experiments.campaign import campaign_spec, run_campaign

SCALES = {
    "small": "smoke",
    "medium": {
        "campaign": {"name": "bench-medium",
                     "title": "Campaign bench (standard WAN)"},
        "options": {"workers": 2},
        "sweeps": [{"name": "main",
                    "schemes": ["Pretium", "NoPrices", "OPT"],
                    "scenario": "standard", "loads": [1.0], "seeds": [0]}],
        "figures": [{"name": "welfare", "kind": "welfare_vs_load",
                     "sweep": "main"},
                    {"name": "timings", "kind": "scheme_timings",
                     "sweep": "main"}],
    },
    "paper": "paper-scale",
}


def bench_perf_campaign(benchmark, record, tmp_path):
    scale_name = os.environ.get("BENCH_PERF_SCALE", "medium")
    spec = campaign_spec(SCALES[scale_name])
    cpu_count = os.cpu_count()
    workers = max(1, min(spec.options.workers, cpu_count or 1))
    options = spec.options.replace(workers=workers)

    result = benchmark.pedantic(
        run_campaign, args=(spec, tmp_path / "out"),
        kwargs={"options": options}, rounds=1, iterations=1)

    assert result.ok, [cell.detail for cell in result.failures]
    assert result.report_md.exists() and result.summary_path.exists()

    a_summary = next(cell.summary for cell in
                     next(iter(result.sweeps.values())).cells if cell.ok)
    record({
        "cpu_count": cpu_count,
        "scale": scale_name,
        "campaign": spec.name,
        "n_cells": result.n_cells,
        "n_requests_per_cell": a_summary["n_requests"],
        "workers": workers,
        "wall_s": result.wall_s,
        "max_rss_mb": result.max_rss_mb,
        "stages": [{"stage": stage.stage, "wall_s": stage.wall_s,
                    "detail": stage.detail} for stage in result.stages],
    })
    print(f"\ncampaign {spec.name!r} ({scale_name}, {result.n_cells} "
          f"cells, {workers} worker(s), {cpu_count} cpu): wall "
          f"{result.wall_s:.2f} s, peak RSS {result.max_rss_mb:.0f} MB")
    for stage in result.stages:
        print(f"  {stage.stage:<16} {stage.wall_s:8.2f} s  {stage.detail}")
