"""Figure 2: the 4-node pricing example.

Paper shape: value-blind scheduling gets welfare 23; progressively richer
price structures improve it; per-(link, timestep) prices reach the
maximum of 34.
"""

from conftest import run_once

from repro.experiments import format_table
from repro.experiments.figures import figure2


def bench_figure2(benchmark, record):
    data = run_once(benchmark, figure2)
    rows = [[row.scheme, row.prices] +
            [f"{row.units[rid]:.1f}" for rid in (1, 2, 3, 4)] +
            [f"{row.welfare:.0f}"] for row in data["rows"]]
    print("\nFigure 2 — pricing example")
    print(format_table(["scheme", "prices", "R1", "R2", "R3", "R4",
                        "welfare"], rows))
    record({"welfare": data["welfare"]})
    assert data["welfare"]["no-price"] == 23.0
    assert data["welfare"]["pretium"] == 34.0
