"""Figure 13: welfare across request value distributions (load 1).

Paper shape: welfare varies with the distribution, but Pretium
consistently outperforms RegionOracle for both pareto and normal values
at every mean/stddev ratio.
"""

from conftest import run_once

from repro.experiments import format_table
from repro.experiments.figures import figure13


def bench_figure13(benchmark, record):
    data = run_once(benchmark, figure13, seed=0)
    rows = [[row["family"], row["mu_over_sigma"],
             row["pretium_welfare_rel"], row["region_welfare_rel"]]
            for row in data["rows"]]
    print("\nFigure 13 — welfare rel. OPT by value distribution")
    print(format_table(["family", "mu/sigma", "Pretium", "RegionOracle"],
                       rows))
    record(data)
    wins = sum(1 for row in data["rows"]
               if row["pretium_welfare_rel"] > row["region_welfare_rel"])
    assert wins >= len(data["rows"]) - 1
