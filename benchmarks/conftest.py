"""Shared benchmark plumbing.

Every benchmark regenerates one of the paper's tables or figures: it runs
the corresponding generator under pytest-benchmark (one round — these are
experiments, not microbenchmarks), prints the rows/series the paper
reports, and saves them as JSON under ``benchmarks/results/``.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def _coerce(obj):
    if isinstance(obj, (np.floating, np.integer)):
        return obj.item()
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if hasattr(obj, "__dict__"):
        return vars(obj)
    return str(obj)


@pytest.fixture
def record(request):
    """Save a benchmark's output rows under results/<bench-name>.json."""
    def _save(data: dict) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        name = request.node.name.replace("/", "_")
        path = RESULTS_DIR / f"{name}.json"
        path.write_text(json.dumps(data, indent=2, default=_coerce))
    return _save


def run_once(benchmark, func, *args, **kwargs):
    """Run an experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1,
                              iterations=1)
