"""Shared benchmark plumbing.

Every benchmark regenerates one of the paper's tables or figures: it runs
the corresponding generator under pytest-benchmark (one round — these are
experiments, not microbenchmarks), prints the rows/series the paper
reports, and saves them as JSON under ``benchmarks/results/``.
"""

from __future__ import annotations

import datetime
import json
import platform
from pathlib import Path

import numpy as np
import pytest

RESULTS_DIR = Path(__file__).parent / "results"
REPO_ROOT = Path(__file__).parent.parent
BENCH_PERF_PATH = REPO_ROOT / "BENCH_PERF.json"

#: node names of perf benchmarks that ran (and passed) this session.
_perf_runs: set[str] = set()


def _coerce(obj):
    if isinstance(obj, (np.floating, np.integer)):
        return obj.item()
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if hasattr(obj, "__dict__"):
        return vars(obj)
    return str(obj)


@pytest.fixture
def record(request):
    """Save a benchmark's output rows under results/<bench-name>.json."""
    def _save(data: dict) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        name = request.node.name.replace("/", "_")
        path = RESULTS_DIR / f"{name}.json"
        path.write_text(json.dumps(data, indent=2, default=_coerce))
    return _save


def pytest_runtest_logreport(report):
    """Track which perf benchmarks ran, for the BENCH_PERF.json roll-up."""
    if (report.when == "call" and report.passed
            and "bench_perf" in report.nodeid):
        _perf_runs.add(report.nodeid)


def pytest_sessionfinish(session, exitstatus):
    """Aggregate perf-benchmark results into a repo-root BENCH_PERF.json.

    Only rewritten when a perf benchmark actually ran this session, so
    figure/table benchmark runs never clobber the checked-in roll-up.
    Collects every ``results/bench_perf_*.json`` (freshly written by the
    ``record`` fixture) plus interpreter/platform metadata, giving CI one
    machine-readable artifact to diff run-over-run.
    """
    if not _perf_runs:
        return
    results = {}
    for path in sorted(RESULTS_DIR.glob("bench_perf_*.json")):
        try:
            results[path.stem] = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            continue
    scales = {data.get("scale") for data in results.values()
              if isinstance(data, dict)}
    payload = {
        "generated_by": "benchmarks/conftest.py::pytest_sessionfinish",
        "timestamp": datetime.datetime.now(
            datetime.timezone.utc).isoformat(timespec="seconds"),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "scale": sorted(s for s in scales if s),
        "benchmarks": results,
    }
    BENCH_PERF_PATH.write_text(json.dumps(payload, indent=2) + "\n")


def run_once(benchmark, func, *args, **kwargs):
    """Run an experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1,
                              iterations=1)
