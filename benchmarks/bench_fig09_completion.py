"""Figure 9: fraction of requests that finish, per scheme.

Paper shape: Pretium completes more requests than the pricing baselines
because it plans into the future and shifts lax-deadline traffic to
quiet periods — and it is the only scheme giving a priori guarantees.
"""

from conftest import run_once

from repro.experiments import format_series
from repro.experiments.figures import figure9


def bench_figure9(benchmark, record):
    data = run_once(benchmark, figure9, seed=0)
    print("\n" + format_series("Figure 9 — completion fraction",
                               data["load_factors"], data["completion"],
                               x_label="load"))
    record(data)
    completion = data["completion"]
    # Pretium completes at least as much as the fixed-price oracles on
    # average across loads.
    loads = range(len(data["load_factors"]))
    pretium_mean = sum(completion["Pretium"][i] for i in loads)
    region_mean = sum(completion["RegionOracle"][i] for i in loads)
    assert pretium_mean > region_mean - 0.05 * len(data["load_factors"])
