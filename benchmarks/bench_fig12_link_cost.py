"""Figure 12: sensitivity to mean link cost (2x sweep at load 1).

Paper shape: both Pretium and RegionOracle lose welfare as metered costs
rise, but RegionOracle falls much faster — it compensates with one big
price hike everywhere, while Pretium raises prices only on the links
that actually got more expensive.
"""

from conftest import run_once

from repro.experiments import format_series
from repro.experiments.figures import figure12


def bench_figure12(benchmark, record):
    data = run_once(benchmark, figure12, seed=0)
    print("\n" + format_series(
        "Figure 12 — welfare rel. OPT vs mean link cost",
        data["cost_factors"], data["welfare_rel"], x_label="cost x"))
    record(data)
    pretium = data["welfare_rel"]["Pretium"]
    region = data["welfare_rel"]["RegionOracle"]
    # Pretium's decline from cheapest to costliest is no worse than
    # RegionOracle's.
    assert (pretium[0] - pretium[-1]) <= (region[0] - region[-1]) + 0.1
