"""Figure 8: provider profit relative to RegionOracle.

Paper shape: Pretium collects a multiple of RegionOracle's profit, with
the widest gap at low load (RegionOracle overprices and under-utilises).
"""

from conftest import run_once

from repro.experiments import format_series
from repro.experiments.figures import figure8


def bench_figure8(benchmark, record):
    data = run_once(benchmark, figure8, seed=0)
    print("\n" + format_series(
        "Figure 8 — absolute profit per scheme",
        data["load_factors"], data["profit_abs"], x_label="load"))
    print(format_series(
        "Figure 8 — profit relative to RegionOracle",
        data["load_factors"], data["profit_rel"], x_label="load"))
    record(data)
    profits = data["profit_abs"]
    for i in range(len(data["load_factors"])):
        # Pretium's profit dominates every baseline at every load.
        for name in ("NoPrices", "RegionOracle", "PeakOracle", "VCGLike"):
            assert profits["Pretium"][i] >= profits[name][i] - 1e-6, \
                f"{name} at load {data['load_factors'][i]}"
