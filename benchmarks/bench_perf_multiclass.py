"""Perf benchmark: multi-class quoting/scheduling + flowlet routing cost.

Runs Pretium on the same world three ways:

- **single** — one neutral class (the pre-class pipeline's code path);
- **multi** — the three-tier ``qos3`` mix (interactive / elastic /
  background): per-class price scaling in the menu, per-class value
  weights and preemption slack in the welfare LP;
- **multi+flowlet** — the same mix under the flowlet routing policy
  (hash-pinned single-candidate admissible sets).

The interesting number is ``class_overhead_ratio`` (multi / single):
the traffic-class layer must stay a constant-factor bookkeeping cost,
not change the asymptotics of quoting or the LP.  ``quotes_per_s`` is
the multi-class end-to-end admission throughput (requests over wall
clock).

Timings are recorded, never gated here (CI's perf gate judges the
rolled-up BENCH_PERF.json against benchmarks/baseline.json).  Scale
with ``BENCH_PERF_SCALE=small|medium`` (CI uses ``small``).
"""

import os
import time

from repro.api import run
from repro.options import RunOptions
from repro.registry import SCENARIOS

SCALES = {
    "small": dict(scenario="multiclass_medium", seed=0),
    "medium": dict(scenario="standard", seed=0),
}


def run_variant(name, seed, classes, routing=None):
    scenario = SCENARIOS.get(name)(seed=seed, classes=classes)
    begin = time.perf_counter()
    report = run("Pretium", scenario,
                 options=RunOptions(solver_backend="scipy",
                                    routing=routing))
    wall = time.perf_counter() - begin
    return report, wall, scenario


def bench_perf_multiclass(benchmark, record):
    scale_name = os.environ.get("BENCH_PERF_SCALE", "medium")
    scale = SCALES[scale_name]
    name, seed = scale["scenario"], scale["seed"]

    multi, multi_wall, scenario = benchmark.pedantic(
        run_variant, args=(name, seed, "qos3"), rounds=1, iterations=1)
    single, single_wall, _ = run_variant(name, seed, "default")
    flowlet, flowlet_wall, _ = run_variant(name, seed, "qos3",
                                           routing="flowlet")

    # The class machinery must actually be on in the multi runs ...
    assert set(multi.summary["per_class"]) == \
        {"interactive", "elastic", "background"}
    assert set(flowlet.summary["per_class"]) == \
        {"interactive", "elastic", "background"}
    # ... and off-but-accounted in the single-class run.
    assert set(single.summary["per_class"]) == {"default"}
    for report in (single, multi, flowlet):
        assert report.summary["delivered"] > 0

    n_requests = scenario.workload.n_requests
    result = {
        "scale": scale_name,
        "scenario": name,
        "n_requests": n_requests,
        "n_classes": len(scenario.workload.classes),
        "single_class_s": single_wall,
        "multiclass_s": multi_wall,
        "multiclass_flowlet_s": flowlet_wall,
        "class_overhead_ratio": multi_wall / single_wall,
        "quotes_per_s": n_requests / multi_wall,
        "per_class_completion": {
            cls: stats["completion"]
            for cls, stats in multi.summary["per_class"].items()},
    }
    record(result)
    print(f"\nmulticlass ({scale_name}, {n_requests} requests, "
          f"{result['n_classes']} classes): single {single_wall:.2f}s, "
          f"multi {multi_wall:.2f}s "
          f"({result['class_overhead_ratio']:.2f}x), "
          f"multi+flowlet {flowlet_wall:.2f}s, "
          f"{result['quotes_per_s']:.0f} quotes/s")
