"""Figure 5: top-10% mean (z_e) vs 95th percentile (y_e) correlation.

Paper shape: across normal, exponential and pareto link traffic the two
measures are linearly correlated with a small absolute gap, justifying
the top-k proxy for percentile costs.
"""

from conftest import run_once

from repro.experiments import format_table
from repro.experiments.figures import figure5


def bench_figure5(benchmark, record):
    data = run_once(benchmark, figure5, seed=0)
    rows = [[name, stats["slope"], stats["intercept"], stats["r"],
             stats["r_squared"]] for name, stats in data.items()]
    print("\nFigure 5 — z_e vs y_e linear fits")
    print(format_table(["distribution", "slope", "intercept", "r", "r^2"],
                       rows))
    record({name: {k: v for k, v in stats.items() if k != "points"}
            for name, stats in data.items()})
    for stats in data.values():
        assert stats["r"] > 0.85
