"""Table 4: per-module runtimes (median and 95th percentile).

Paper shape: RA (per request) and SAM (per timestep) run in about a
second on the production scale; PC takes a few seconds once a day.  Our
absolute numbers differ (HiGHS vs Gurobi, different instance sizes) but
the ordering RA < SAM < PC and the interactive-latency claim hold.
"""

from conftest import run_once

from repro.experiments import format_table
from repro.experiments.figures import table4


def bench_table4(benchmark, record):
    data = run_once(benchmark, table4, seed=0, load_factor=2.0)
    rows = [[module, stats["median"], stats["p95"], stats["count"]]
            for module, stats in data["runtimes"].items()]
    print(f"\nTable 4 — module runtimes (s) over "
          f"{data['n_requests']} requests / {data['n_steps']} steps")
    print(format_table(["module", "median", "p95", "count"], rows))
    record(data)
    runtimes = data["runtimes"]
    assert runtimes["RA"]["median"] < runtimes["SAM"]["p95"]
    assert runtimes["RA"]["median"] < 1.0  # RA is on the request path
