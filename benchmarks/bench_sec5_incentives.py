"""Section 5 / Claim 1: strategic deviations rarely pay.

Paper numbers: fewer than 26% of admitted requests could gain by
misreporting (even with omniscient knowledge), and the average gain
conditional on benefiting was below 6%.
"""

from conftest import run_once

from repro.experiments import deviation_study, quick_scenario


def bench_incentives(benchmark, record):
    workload = quick_scenario(load_factor=2.0, seed=0).workload
    report = run_once(benchmark, deviation_study, workload, n_samples=10,
                      seed=0)
    print(f"\nSection 5 — deviation study over {report.n_requests} "
          f"sampled requests x {len(report.outcomes)} trials")
    print(f"  fraction able to benefit : {report.fraction_benefiting:.2f} "
          "(paper: < 0.26)")
    print(f"  mean relative gain       : {report.mean_relative_gain:.3f} "
          "(paper: < 0.06)")
    record({"fraction_benefiting": report.fraction_benefiting,
            "mean_relative_gain": report.mean_relative_gain,
            "trials": len(report.outcomes)})
    assert report.fraction_benefiting <= 0.5
