"""Figure 10: CDF of 90th-percentile link utilisation, per scheme.

Paper shape: Pretium's schedule adjustment shaves utilisation peaks —
the median link's 90th-percentile utilisation drops ~30% vs RegionOracle.
"""

from conftest import run_once

from repro.experiments import format_table
from repro.experiments.figures import figure10


def bench_figure10(benchmark, record):
    data = run_once(benchmark, figure10, seed=0, load_factor=2.0)
    rows = [[name, stats["median"], stats["median_peak_to_mean"],
             stats["delivered"]] for name, stats in data.items()]
    print("\nFigure 10 — link utilisation spikes per scheme")
    print(format_table(["scheme", "median p90 util",
                        "median peak/mean", "delivered"], rows))
    record({name: {"median": stats["median"],
                   "median_peak_to_mean": stats["median_peak_to_mean"],
                   "delivered": stats["delivered"]}
            for name, stats in data.items()})
    # Pretium's schedules stay flat (volume-neutral spike measure): the
    # median carried link's peak never exceeds a small multiple of its
    # mean, and is in the same band as the cost-levelled NoPrices LP.
    assert data["Pretium"]["median_peak_to_mean"] <= \
        data["NoPrices"]["median_peak_to_mean"] + 1.0
    assert data["Pretium"]["median_peak_to_mean"] < 6.0
