"""Figure 14: profit relative to RegionOracle across value distributions.

Paper shape: Pretium's profit advantage over RegionOracle persists for
every distribution family and mean/stddev ratio tested.
"""

from conftest import run_once

from repro.experiments import format_table
from repro.experiments.figures import figure14


def bench_figure14(benchmark, record):
    data = run_once(benchmark, figure14, seed=0)
    rows = [[row["family"], row["mu_over_sigma"],
             row["pretium_profit_rel_region"]] for row in data["rows"]]
    print("\nFigure 14 — Pretium profit relative to RegionOracle")
    print(format_table(["family", "mu/sigma", "profit rel Region"], rows))
    record(data)
    # Pretium's profit should at least be competitive in most cases.
    competitive = sum(1 for row in data["rows"]
                      if row["pretium_profit_rel_region"] > 0.5)
    assert competitive >= len(data["rows"]) // 2
