"""Extension (§4.4 "Convergence and Stability of price choice").

With stationary demand (same arrival distribution every day), the price
selection should be approximately stable across windows: prices computed
for consecutive windows converge rather than oscillate.  We run Pretium
over four identical-statistics days and measure the relative change in
the per-(link, timestep-of-day) price vector between consecutive windows.
"""

import numpy as np
from conftest import run_once

from repro.core import PretiumConfig, PretiumController
from repro.experiments import format_table
from repro.network import wan_topology
from repro.sim import simulate
from repro.traffic import NormalValues, build_workload


def _price_drift(seed: int = 0):
    steps_per_day = 12
    n_days = 4
    topology = wan_topology(n_nodes=12, n_regions=3, metered_fraction=0.2,
                            metered_cost=25.0, seed=seed)
    workload = build_workload(topology, n_days=n_days,
                              steps_per_day=steps_per_day, load_factor=2.0,
                              values=NormalValues(1.0, 0.5),
                              diurnal_amplitude=0.5, noise_sigma=0.15,
                              flash_crowd_rate=0.0,
                              max_requests_per_pair=15, seed=seed)
    controller = PretiumController(
        PretiumConfig(window=steps_per_day,
                      lookback=steps_per_day + steps_per_day // 2))
    result = simulate(controller, workload)
    prices = result.extras["prices"]
    days = [prices[d * steps_per_day:(d + 1) * steps_per_day]
            for d in range(n_days)]
    drifts = []
    for first, second in zip(days[1:], days[2:]):
        # relative L1 drift between consecutive *computed* windows
        denom = np.abs(first).sum()
        drifts.append(float(np.abs(second - first).sum() / max(denom, 1e-9)))
    return drifts


def bench_price_convergence(benchmark, record):
    drifts = run_once(benchmark, _price_drift, seed=0)
    rows = [[f"window {i+2} vs {i+1}", drift]
            for i, drift in enumerate(drifts)]
    print("\nPrice convergence — relative L1 drift between windows")
    print(format_table(["transition", "relative drift"], rows))
    record({"drifts": drifts})
    # Later transitions don't blow up: the loop is stable, not divergent.
    assert drifts[-1] < 2.0
