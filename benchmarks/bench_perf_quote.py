"""Perf benchmark: heap-based RA quote vs the reference rescan greedy.

Quotes a medium arrival stream twice — ``quote_path="scan"`` (the
reference O(routes x window) rescan per menu segment) and ``"heap"``
(vectorised head precompute + lazy-invalidation min-heap) — timing only
the quote calls; admissions mutate state identically between quotes so
both paths see the same reservations.  Menus must match exactly; the
recorded JSON (``benchmarks/results/bench_perf_quote.json``) reports the
timings and speedup.

Timings are recorded, never gated (CI fails on crash, not slowness).
Scale with ``BENCH_PERF_SCALE=small|medium`` (CI uses ``small``).
"""

import os
import random
import time

from repro.core import (ByteRequest, NetworkState, PretiumConfig,
                        RequestAdmission)
from repro.network import small_wan

SCALES = {
    "small": dict(n_requests=25, n_steps=24, window=12),
    "medium": dict(n_requests=120, n_steps=96, window=24),
}


def run_stream(quote_path, n_requests, n_steps, window):
    """Quote+admit an arrival stream; returns (quote seconds, menus)."""
    rng = random.Random(3)
    topology = small_wan(seed=2)
    config = PretiumConfig(window=window, lookback=window,
                           quote_path=quote_path)
    state = NetworkState(topology, n_steps, config)
    ra = RequestAdmission(state)
    nodes = list(topology.nodes)
    quote_s = 0.0
    menus = []
    for rid in range(n_requests):
        src, dst = rng.sample(nodes, 2)
        start = rng.randrange(0, window)
        deadline = min(n_steps - 1, start + rng.randrange(window // 2,
                                                          2 * window + 12))
        req = ByteRequest(rid, src, dst, rng.uniform(40.0, 200.0), 0,
                          start, deadline, 1.0)
        begin = time.perf_counter()
        menu = ra.quote(req, now=0)
        quote_s += time.perf_counter() - begin
        menus.append(menu)
        ra.admit(req, menu, req.demand, 0)
    return quote_s, menus


def bench_perf_quote(benchmark, record):
    scale_name = os.environ.get("BENCH_PERF_SCALE", "medium")
    scale = SCALES[scale_name]

    scan_s, scan_menus = benchmark.pedantic(
        run_stream, args=("scan",), kwargs=scale, rounds=1, iterations=1)
    heap_s, heap_menus = run_stream("heap", **scale)

    # The heap path must reproduce the reference menus exactly.
    def key(menus):
        return [[(s.quantity, s.unit_price, s.path.link_indices(),
                  s.timestep) for s in m.segments] for m in menus]
    assert key(scan_menus) == key(heap_menus)

    n_segments = sum(len(m.segments) for m in scan_menus)
    result = {
        "scale": scale_name, **scale,
        "n_segments": n_segments,
        "scan_quote_s": scan_s,
        "heap_quote_s": heap_s,
        "speedup": scan_s / heap_s,
    }
    record(result)
    print(f"\nRA quoting ({scale_name}, {n_segments} segments): "
          f"scan {scan_s * 1e3:.1f} ms, heap {heap_s * 1e3:.1f} ms "
          f"-> {result['speedup']:.1f}x")
