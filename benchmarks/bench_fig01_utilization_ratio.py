"""Figure 1: CDF of the 90th/10th percentile link-utilisation ratio.

Paper shape: the ratio exceeds 5x for more than 10% of links while
staying below 2x for roughly 70% — i.e. most links are steady but a
sizeable tail varies enough that static prices cannot fit both.
"""

from conftest import run_once

from repro.experiments.figures import figure1


def bench_figure1(benchmark, record):
    data = run_once(benchmark, figure1, seed=0)
    print("\nFigure 1 — 90th/10th percentile utilisation ratio CDF")
    print(f"  links with ratio > 5x : {data['fraction_above_5x']:.2f} "
          "(paper: > 0.10)")
    print(f"  links with ratio < 2x : {data['fraction_below_2x']:.2f} "
          "(paper: ~ 0.70)")
    record({"fraction_above_5x": data["fraction_above_5x"],
            "fraction_below_2x": data["fraction_below_2x"],
            "ratios": data["ratios"], "cdf": data["cdf"]})
    assert data["fraction_above_5x"] > 0.02
    assert data["fraction_below_2x"] > 0.4
