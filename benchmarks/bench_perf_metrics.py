"""Perf micro-benchmark: metrics hot-path cost and lock contention.

Every admission decision touches the metrics registry several times
(latency histograms, admit/reject counters), so the per-op cost of
``Counter.inc`` / ``Histogram.observe`` is genuine hot-path overhead —
and since the live ``/metrics`` endpoint scrapes from other threads,
each metric carries a lock.  This bench measures that lock's price:

- **uncontended** — one thread hammering a private counter/histogram
  (the sweep-worker steady state);
- **contended** — ``n_threads`` threads hammering the *same* metric
  (the worst case: service loop + snapshotter + scraper all active).

Recorded ops/sec land in ``BENCH_PERF.json`` (``_per_s`` keys are
higher-is-better for the perf gate); ``contention_slowdown`` is the
uncontended/contended ratio for the counter.  Correctness is asserted —
the contended counter must equal exactly ``n_threads * n_ops`` (the
whole point of the lock).

Timings are recorded, never gated (CI fails on crash, not slowness).
Scale with ``BENCH_PERF_SCALE=small|medium`` (CI uses ``small``).
"""

import os
import threading
import time

from repro.telemetry import MetricsRegistry

SCALES = {
    "small": dict(n_ops=20_000, n_threads=4),
    "medium": dict(n_ops=100_000, n_threads=4),
}


def _hammer_counter(counter, n_ops, barrier=None):
    if barrier is not None:
        barrier.wait()
    inc = counter.inc
    for _ in range(n_ops):
        inc()


def _hammer_histogram(hist, n_ops, barrier=None):
    if barrier is not None:
        barrier.wait()
    observe = hist.observe
    for i in range(n_ops):
        observe(0.1 + (i & 1023))


def _timed(fn, *args):
    start = time.perf_counter()
    fn(*args)
    return time.perf_counter() - start


def _contended(make_worker, metric, n_ops, n_threads):
    """Wall time for n_threads all hammering one metric concurrently."""
    barrier = threading.Barrier(n_threads + 1)
    threads = [threading.Thread(target=make_worker,
                                args=(metric, n_ops, barrier))
               for _ in range(n_threads)]
    for thread in threads:
        thread.start()
    barrier.wait()
    start = time.perf_counter()
    for thread in threads:
        thread.join()
    return time.perf_counter() - start


def bench_perf_metrics(benchmark, record):
    scale_name = os.environ.get("BENCH_PERF_SCALE", "medium")
    scale = SCALES[scale_name]
    n_ops, n_threads = scale["n_ops"], scale["n_threads"]
    registry = MetricsRegistry()

    def run():
        out = {}
        counter = registry.counter("bench.uncontended")
        out["counter_s"] = _timed(_hammer_counter, counter, n_ops)
        hist = registry.histogram("bench.uncontended_ms")
        out["histogram_s"] = _timed(_hammer_histogram, hist, n_ops)
        shared = registry.counter("bench.contended")
        out["contended_counter_s"] = _contended(
            _hammer_counter, shared, n_ops, n_threads)
        assert shared.value == n_threads * n_ops, \
            "lost updates under contention"
        shared_hist = registry.histogram("bench.contended_ms")
        out["contended_histogram_s"] = _contended(
            _hammer_histogram, shared_hist, n_ops, n_threads)
        assert shared_hist.count == n_threads * n_ops, \
            "lost observations under contention"
        return out

    timings = benchmark.pedantic(run, rounds=1, iterations=1)

    counter_per_s = n_ops / timings["counter_s"]
    contended_per_s = (n_threads * n_ops) / timings["contended_counter_s"]
    result = {
        "scale": scale_name,
        "n_ops": n_ops,
        "n_threads": n_threads,
        "counter_ops_per_s": counter_per_s,
        "histogram_ops_per_s": n_ops / timings["histogram_s"],
        "contended_counter_ops_per_s": contended_per_s,
        "contended_histogram_ops_per_s":
            (n_threads * n_ops) / timings["contended_histogram_s"],
        "contention_slowdown": counter_per_s / contended_per_s,
    }
    record(result)
    print(f"\nmetrics ({scale_name}, {n_ops} ops, {n_threads} threads): "
          f"counter {result['counter_ops_per_s']:.0f} op/s "
          f"(contended {result['contended_counter_ops_per_s']:.0f}), "
          f"histogram {result['histogram_ops_per_s']:.0f} op/s "
          f"(contended {result['contended_histogram_ops_per_s']:.0f}), "
          f"{result['contention_slowdown']:.1f}x contention slowdown")
