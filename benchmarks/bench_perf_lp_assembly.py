"""Perf benchmark: batched COO LP construction vs the expression builder.

Builds the SAM LP for one medium scenario with both construction paths
and times (a) model construction, (b) matrix assembly in the solver, and
(c) the full ``adjust`` call including the HiGHS solve.  Both paths must
produce the identical plan; the recorded JSON
(``benchmarks/results/bench_perf_lp_assembly.json``) reports the
baseline/fast timings and speedups.

The assertion policy is crash-and-equivalence only — timings are
recorded, never gated, so CI stays robust to noisy runners.  Scale with
``BENCH_PERF_SCALE=small|medium`` (CI uses ``small``).
"""

import os
import random
import time

import numpy as np

from repro.core import (ByteRequest, NetworkState, PretiumConfig,
                        RequestAdmission, ScheduleAdjuster)
from repro.faults import resilience
from repro.lp import solver as lp_solver
from repro.network import small_wan

SCALES = {
    "small": dict(n_requests=15, n_steps=24, window=12),
    "medium": dict(n_requests=100, n_steps=72, window=24),
}


class _CaptureModel(Exception):
    """Raised by the patched solve to stop after construction."""


def make_scenario(lp_builder, n_requests, n_steps, window):
    rng = random.Random(3)
    topology = small_wan(seed=2)
    config = PretiumConfig(window=window, lookback=window,
                           lp_builder=lp_builder, quote_path="scan")
    state = NetworkState(topology, n_steps, config)
    ra = RequestAdmission(state)
    sam = ScheduleAdjuster(state, billing_window=window)
    nodes = list(topology.nodes)
    contracts = []
    for rid in range(n_requests):
        src, dst = rng.sample(nodes, 2)
        start = rng.randrange(0, window)
        deadline = min(n_steps - 1, start + rng.randrange(8, 40))
        req = ByteRequest(rid, src, dst, rng.uniform(2.0, 30.0), 0,
                          start, deadline, 1.0)
        menu = ra.quote(req, now=0)
        contract = ra.admit(req, menu, req.demand, 0)
        if contract:
            contracts.append(contract)
    realized = np.zeros((n_steps, topology.num_links))
    return sam, contracts, realized


def measure(lp_builder, monkeypatch, scale):
    sam, contracts, realized = make_scenario(lp_builder, **scale)

    # End-to-end adjust (construction + assembly + HiGHS solve).
    start = time.perf_counter()
    plan = sam.adjust(contracts, {}, realized, now=2)
    total_s = time.perf_counter() - start

    # Construction only: intercept the solver entry point to capture the
    # built model.  SAM funnels every solve through a ScipySession, which
    # calls the `solve_model` binding in `repro.lp.solver`, so patch it
    # there (the resilience layer's own binding only serves sessionless
    # direct callers).
    captured = {}

    def capture(model, **kwargs):
        captured["model"] = model
        raise _CaptureModel

    with monkeypatch.context() as patch:
        patch.setattr(lp_solver, "solve_model", capture)
        start = time.perf_counter()
        try:
            sam.adjust(contracts, {}, realized, now=2)
        except _CaptureModel:
            pass
        build_s = time.perf_counter() - start

    model = captured["model"]
    start = time.perf_counter()
    lp_solver._assemble(model)
    assemble_s = time.perf_counter() - start
    return {"plan": plan, "model": model, "total_s": total_s,
            "build_s": build_s, "assemble_s": assemble_s}


def bench_perf_lp_assembly(benchmark, record, monkeypatch):
    scale_name = os.environ.get("BENCH_PERF_SCALE", "medium")
    scale = SCALES[scale_name]

    expr = benchmark.pedantic(measure, args=("expr", monkeypatch, scale),
                              rounds=1, iterations=1)
    coo = measure("coo", monkeypatch, scale)

    # Equivalence: identical matrices imply identical plans.
    key = lambda plan: [(t.rid, t.links, t.timestep, round(t.volume, 9))
                        for t in plan]
    assert key(expr["plan"]) == key(coo["plan"])
    assert expr["model"].num_variables == coo["model"].num_variables
    assert expr["model"].num_constraints == coo["model"].num_constraints

    construct_expr = expr["build_s"] + expr["assemble_s"]
    construct_coo = coo["build_s"] + coo["assemble_s"]
    result = {
        "scale": scale_name, **scale,
        "num_variables": expr["model"].num_variables,
        "num_constraints": expr["model"].num_constraints,
        "expr": {"build_s": expr["build_s"],
                 "assemble_s": expr["assemble_s"],
                 "adjust_total_s": expr["total_s"]},
        "coo": {"build_s": coo["build_s"],
                "assemble_s": coo["assemble_s"],
                "adjust_total_s": coo["total_s"]},
        "speedup_construction": construct_expr / construct_coo,
        "speedup_end_to_end": expr["total_s"] / coo["total_s"],
    }
    record(result)
    print(f"\nLP construction+assembly ({scale_name}): "
          f"expr {construct_expr * 1e3:.1f} ms, "
          f"coo {construct_coo * 1e3:.1f} ms "
          f"-> {result['speedup_construction']:.1f}x "
          f"(end-to-end {result['speedup_end_to_end']:.1f}x)")
