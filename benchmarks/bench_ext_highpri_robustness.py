"""Extension (§4.4 "Network faults and unexpected increases in high-pri
volume").

Pretium sets capacity aside for high-pri traffic and relies on SAM to
re-spread load when bursts exceed the reservation.  We admit contracts
normally, then inject unexpected high-pri bursts (shrinking usable
capacity on random links mid-run) and measure how often guarantees are
still met — the paper claims "the likelihood of reneging on guarantees is
small".
"""

import numpy as np
from conftest import run_once

from repro.core import PretiumConfig, PretiumController
from repro.experiments import format_table
from repro.network import wan_topology
from repro.traffic import NormalValues, build_workload


def _run_with_bursts(burst_fraction: float, seed: int = 0) -> dict:
    steps_per_day = 10
    topology = wan_topology(n_nodes=12, n_regions=3, metered_fraction=0.2,
                            metered_cost=25.0, seed=seed)
    workload = build_workload(topology, n_days=2,
                              steps_per_day=steps_per_day, load_factor=1.5,
                              values=NormalValues(1.0, 0.5),
                              max_requests_per_pair=10, seed=seed)
    config = PretiumConfig(window=steps_per_day, lookback=steps_per_day,
                           highpri_fraction=0.1)
    controller = PretiumController(config)
    controller.begin(workload)

    rng = np.random.default_rng(seed + 1)
    loads = np.zeros((workload.n_steps, topology.num_links))
    delivered: dict[int, float] = {}
    for t in range(workload.n_steps):
        controller.window_start(t)
        for request in workload.arrivals_at(t):
            controller.arrival(request, t)
        # unexpected high-pri burst: a few links lose extra capacity now
        if burst_fraction > 0:
            for index in rng.choice(topology.num_links,
                                    size=max(1, topology.num_links // 10),
                                    replace=False):
                link = topology.link(int(index))
                controller.state.set_highpri_usage(
                    t, int(index), link.capacity * burst_fraction)
        for tx in controller.step(t, delivered, loads):
            for index in tx.links:
                loads[t, index] += tx.volume
            delivered[tx.rid] = delivered.get(tx.rid, 0.0) + tx.volume

    met, total = 0, 0
    for contract in controller.contracts:
        if contract.guaranteed <= 1e-9:
            continue
        total += 1
        if delivered.get(contract.rid, 0.0) >= contract.guaranteed - 1e-5:
            met += 1
    return {"guarantees": total, "met": met,
            "fraction_met": met / total if total else 1.0}


def bench_highpri_robustness(benchmark, record):
    calm = _run_with_bursts(0.0)
    stressed = run_once(benchmark, _run_with_bursts, 0.35)
    rows = [["no bursts", calm["guarantees"], calm["fraction_met"]],
            ["35% capacity bursts", stressed["guarantees"],
             stressed["fraction_met"]]]
    print("\nHigh-pri burst robustness — guarantees met")
    print(format_table(["condition", "contracts", "fraction met"], rows))
    record({"calm": calm, "stressed": stressed})
    assert calm["fraction_met"] >= 0.999
    # reneging stays rare even under sustained unexpected bursts
    assert stressed["fraction_met"] >= 0.9
