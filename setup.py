"""Setuptools entry point.

Kept alongside ``pyproject.toml`` so that editable installs work in offline
environments that lack the ``wheel`` package (pip falls back to the legacy
``setup.py develop`` path with ``--no-use-pep517``).
"""

from setuptools import setup

setup()
